package filedev

import (
	"errors"
	"fmt"
	"path/filepath"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/device/ioengine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Drive is a file-backed tape drive: the mounted medium's blocks live
// in a sequential spool file, reads and writes stream real bytes
// through the OS and charge their measured wall time, and head
// repositioning charges the profile's modeled seek latency.
//
// Transfers are planned under the control token (index updates,
// offset reservation) and executed on the drive's I/O worker while
// the proc yields, so independent drives' transfers overlap in
// wall-clock time.
type Drive struct {
	name string
	k    *sim.Kernel
	cfg  device.DriveConfig
	res  *sim.Resource
	dir  string
	b    *Backend
	w    *ioengine.Worker // nil when the backend is synchronous

	m       device.Medium
	spool   *recFile
	pos     device.Addr
	reverse bool
	loadErr error

	inj    fault.Injector
	lost   bool
	shared *transport
	closed bool

	rec   *trace.Recorder
	met   driveMetrics
	stats device.DriveStats
}

var _ device.Drive = (*Drive)(nil)

// driveMetrics mirrors the simulator drive's exported series so
// dashboards and trace checks work unchanged across backends.
type driveMetrics struct {
	blocksRead    *obs.Counter
	blocksWritten *obs.Counter
	seeks         *obs.Counter
	latency       *obs.Histogram
}

// Name implements device.Drive.
func (d *Drive) Name() string { return d.name }

// Config implements device.Drive.
func (d *Drive) Config() device.DriveConfig { return d.cfg }

// Media implements device.Drive.
func (d *Drive) Media() device.Medium { return d.m }

// BusyTime implements device.Drive.
func (d *Drive) BusyTime() sim.Duration { return d.res.BusyTime }

// DriveStats implements device.Drive.
func (d *Drive) DriveStats() device.DriveStats { return d.stats }

// SetRecorder implements device.Drive.
func (d *Drive) SetRecorder(r *trace.Recorder) { d.rec = r }

// SetInjector implements device.Drive.
func (d *Drive) SetInjector(inj fault.Injector) { d.inj = inj }

// SetMetrics implements device.Drive.
func (d *Drive) SetMetrics(reg *obs.Registry) {
	d.w.SetMetrics(reg)
	if reg == nil {
		d.met = driveMetrics{}
		return
	}
	l := obs.A("drive", d.name)
	d.met = driveMetrics{
		blocksRead:    reg.Counter("tape_blocks_read_total", "Blocks read from tape.", l),
		blocksWritten: reg.Counter("tape_blocks_written_total", "Blocks written to tape.", l),
		seeks:         reg.Counter("tape_seeks_total", "Head repositioning seeks.", l),
		latency: reg.Histogram("tape_request_seconds",
			"Latency of tape requests, queueing included.", obs.DeviceLatencyBuckets, l),
	}
}

// Load implements device.Drive: it respools the medium's current
// contents into the drive's spool file, so the OS copy always matches
// the authoritative medium at mount time. The respool runs inline —
// a mount is not a transfer and charges no time — which is safe
// because the worker has no in-flight operations when the token
// holder can call Load. Spool errors surface on the first transfer
// (Load itself cannot fail, matching the simulator).
func (d *Drive) Load(m device.Medium) {
	d.m = m
	d.pos = 0
	d.reverse = false
	d.loadErr = nil
	if d.spool != nil {
		d.spool.close()
		d.spool = nil
	}
	if m == nil {
		return
	}
	spool, err := d.b.createRecFile(filepath.Join(d.dir, "spool-"+sanitize(m.Name())+".dat"))
	if err != nil {
		d.loadErr = fmt.Errorf("filedev: drive %q load: %w", d.name, err)
		return
	}
	if eod := int64(m.EOD()); eod > 0 {
		blks, err := m.ReadSetup(device.Region{Start: 0, N: eod})
		if err == nil {
			err = spool.appendRecords(0, blks)
		}
		if err != nil {
			d.loadErr = fmt.Errorf("filedev: drive %q spool %q: %w", d.name, m.Name(), err)
			spool.close()
			return
		}
	}
	d.spool = spool
}

// ready rejects operations on an empty or failed drive.
func (d *Drive) ready() error {
	switch {
	case d.lost:
		return fmt.Errorf("filedev: drive %q: %w", d.name, fault.ErrDriveLost)
	case d.closed:
		return fmt.Errorf("filedev: drive %q is closed", d.name)
	case d.m == nil:
		return fmt.Errorf("filedev: drive %q has no cartridge", d.name)
	case d.loadErr != nil:
		return d.loadErr
	}
	return nil
}

// checkRead validates a read range against recorded data.
func (d *Drive) checkRead(addr device.Addr, n int64) error {
	if eod := d.m.EOD(); addr < 0 || n < 0 || addr+device.Addr(n) > eod {
		return fmt.Errorf("filedev: drive %q read [%d,%d) out of range [0,%d)",
			d.name, addr, addr+device.Addr(n), eod)
	}
	return nil
}

// switchIn claims a shared transport, forcing the next positioning to
// pay a full seek when the other logical drive used it last.
func (d *Drive) switchIn() {
	if d.shared == nil || d.shared.last == d {
		return
	}
	d.shared.last = d
	d.reverse = false
	d.pos = -1 // off-position: next request repositions
}

// consult asks the fault injector about one request while the drive
// is held, charging stalls and marking permanent transport loss. The
// injector's OS-level verdict, if any, is armed on the spool file so
// it strikes the planned syscalls on the worker.
func (d *Drive) consult(p *sim.Proc, write bool, addr device.Addr, n int64) (bool, error) {
	op := fault.Op{
		Device: "tape:" + d.name, Write: write,
		Addr: int64(addr), N: n, Now: p.Now(),
	}
	dec := fault.Decide(d.inj, op)
	if dec.Stall > 0 {
		d.stats.Stalls++
		d.stats.StallTime += dec.Stall
		t0 := p.Now()
		p.Hold(dec.Stall)
		d.record(p, trace.Fault, t0, 0)
	}
	if dec.Err != nil {
		d.stats.InjectedFaults++
		if errors.Is(dec.Err, fault.ErrDriveLost) {
			d.lost = true
		}
		return false, fmt.Errorf("filedev: drive %q: %w", d.name, dec.Err)
	}
	if dec.Corrupt {
		d.stats.InjectedFaults++
	}
	if osd := fault.DecideOS(d.inj, op); !osd.Zero() {
		d.stats.InjectedFaults++
		d.spool.arm(osd)
	}
	return dec.Corrupt, nil
}

// record emits a trace event spanning [from, now].
func (d *Drive) record(p *sim.Proc, kind trace.Kind, from sim.Time, blocks int64) {
	d.rec.AddFor(p, trace.Event{
		Device: "tape:" + d.name, Kind: kind,
		Start: from, End: p.Now(), Blocks: blocks,
	})
}

// seekTo charges the modeled reposition latency to addr. The spool
// file repositions for free; the transport this backend stands in for
// does not, so the profile's seek model is retained as virtual time.
func (d *Drive) seekTo(p *sim.Proc, addr device.Addr, wantReverse bool) {
	if addr == d.pos && d.reverse == wantReverse {
		return
	}
	if addr != d.pos {
		dist := int64(addr - d.pos)
		if dist < 0 {
			dist = -dist
		}
		if d.pos < 0 {
			dist = int64(addr) // off-position after a transport switch
		}
		st := d.cfg.SeekFixed + sim.Duration(dist)*d.cfg.SeekPerBlock
		if st > 0 {
			d.stats.Seeks++
			d.stats.SeekTime += st
			d.met.seeks.Inc()
			t0 := p.Now()
			p.Hold(st)
			d.record(p, trace.TapeSeek, t0, 0)
		}
		d.pos = addr
	}
	d.reverse = wantReverse
}

// transfer runs one planned spool operation through the drive's
// worker (or inline when synchronous) and charges its measured wall
// duration, updating the counters shared by every read/write path.
func (d *Drive) transfer(p *sim.Proc, kind trace.Kind, entered sim.Time, n int64, write bool, op func() error) error {
	tx := p.Now()
	elapsed, err := doIO(p, d.w, paced(d.b.pace(d.cfg.EffectiveRate(), n), op))
	switch {
	case errors.Is(err, ioengine.ErrDeviceFailed):
		// The worker's breaker tripped: the transport is gone for this
		// run. Surface it as a drive loss so the session's degrade path
		// rebuilds on a shared pair with fresh, healthy workers.
		d.lost = true
		return fmt.Errorf("filedev: drive %q: %w: %w", d.name, fault.ErrDriveLost, err)
	case errors.Is(err, ioengine.ErrClosed):
		return fmt.Errorf("filedev: drive %q: %w", d.name, err)
	case err != nil:
		return err
	}
	d.stats.TransferTime += elapsed
	d.stats.Requests++
	if write {
		d.stats.BlocksWritten += n
		d.met.blocksWritten.Add(float64(n))
	} else {
		d.stats.BlocksRead += n
		d.met.blocksRead.Add(float64(n))
	}
	d.record(p, kind, tx, n)
	d.met.latency.Observe(sim.Duration(p.Now() - entered).Seconds())
	return nil
}

// ReadAt implements device.Drive.
func (d *Drive) ReadAt(p *sim.Proc, addr device.Addr, n int64) ([]block.Block, error) {
	if err := d.ready(); err != nil {
		return nil, err
	}
	if err := d.checkRead(addr, n); err != nil {
		return nil, err
	}
	entered := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn()
	corrupt, err := d.consult(p, false, addr, n)
	if err != nil {
		return nil, err
	}
	d.seekTo(p, addr, false)
	plan, err := d.spool.planRead(int64(addr), n)
	if err != nil {
		return nil, err
	}
	if err := d.transfer(p, trace.TapeRead, entered, n, false, func() error {
		return d.spool.execReads(plan)
	}); err != nil {
		return nil, err
	}
	d.pos = addr + device.Addr(n)
	blks := assemble(plan)
	if corrupt {
		corruptDelivered(blks)
	}
	return blks, nil
}

// ReadRegion implements device.Drive.
func (d *Drive) ReadRegion(p *sim.Proc, r device.Region) ([]block.Block, error) {
	return d.ReadAt(p, r.Start, r.N)
}

// ReadRegionReverse implements device.Drive: the head positions at
// the region's end (free when already there) and streams backward;
// blocks return in forward order.
func (d *Drive) ReadRegionReverse(p *sim.Proc, r device.Region) ([]block.Block, error) {
	if err := d.ready(); err != nil {
		return nil, err
	}
	if !d.cfg.BiDirectional {
		return nil, fmt.Errorf("filedev: drive %q cannot read in reverse", d.name)
	}
	if err := d.checkRead(r.Start, r.N); err != nil {
		return nil, err
	}
	entered := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn()
	corrupt, err := d.consult(p, false, r.Start, r.N)
	if err != nil {
		return nil, err
	}
	d.seekTo(p, r.End(), true)
	plan, err := d.spool.planRead(int64(r.Start), r.N)
	if err != nil {
		return nil, err
	}
	if err := d.transfer(p, trace.TapeRead, entered, r.N, false, func() error {
		return d.spool.execReads(plan)
	}); err != nil {
		return nil, err
	}
	d.pos = r.Start
	blks := assemble(plan)
	if corrupt {
		corruptDelivered(blks)
	}
	return blks, nil
}

// Append implements device.Drive: the medium records the append (it
// stays authoritative for content and EOD), and the same bytes stream
// to the spool file for the measured transfer cost.
func (d *Drive) Append(p *sim.Proc, blks []block.Block) (device.Region, error) {
	if err := d.ready(); err != nil {
		return device.Region{}, err
	}
	entered := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn()
	eod := d.m.EOD()
	if _, err := d.consult(p, true, eod, int64(len(blks))); err != nil {
		return device.Region{}, err
	}
	reg, err := d.m.AppendSetup(blks)
	if err != nil {
		return device.Region{}, err
	}
	d.seekTo(p, reg.Start, false)
	plan, err := d.spool.planAppend(int64(reg.Start), blks)
	if err != nil {
		return device.Region{}, err
	}
	if err := d.transfer(p, trace.TapeWrite, entered, reg.N, true, func() error {
		return d.spool.execWrites(plan)
	}); err != nil {
		return device.Region{}, err
	}
	d.pos = reg.End()
	return reg, nil
}

// WriteAt implements device.Drive: dual-write like Append, with the
// replaced records repointed in the spool index.
func (d *Drive) WriteAt(p *sim.Proc, addr device.Addr, blks []block.Block) error {
	if err := d.ready(); err != nil {
		return err
	}
	entered := p.Now()
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn()
	if _, err := d.consult(p, true, addr, int64(len(blks))); err != nil {
		return err
	}
	if err := d.m.WriteSetup(addr, blks); err != nil {
		return err
	}
	d.seekTo(p, addr, false)
	plan, err := d.spool.planAppend(int64(addr), blks)
	if err != nil {
		return err
	}
	if err := d.transfer(p, trace.TapeWrite, entered, int64(len(blks)), true, func() error {
		return d.spool.execWrites(plan)
	}); err != nil {
		return err
	}
	d.pos = addr + device.Addr(len(blks))
	return nil
}

// Rewind implements device.Drive.
func (d *Drive) Rewind(p *sim.Proc) {
	d.res.Acquire(p)
	defer d.res.Release(p)
	d.switchIn()
	d.seekTo(p, 0, false)
}

// Close implements device.Drive: it stops the drive's I/O worker
// (draining any queued requests), releases the spool file, and
// removes the scratch directory. Safe to call more than once and
// after partial construction.
func (d *Drive) Close() error {
	if d.closed {
		return nil
	}
	d.closed = true
	d.w.Close()
	var err error
	if d.spool != nil {
		err = d.spool.close()
		d.spool = nil
	}
	remove(d.dir)
	return err
}

// corruptDelivered bit-flips one block of a delivered read without
// touching the stored copy, so a re-read recovers.
func corruptDelivered(blks []block.Block) {
	if len(blks) == 0 {
		return
	}
	i := len(blks) / 2
	bad := append(block.Block(nil), blks[i]...)
	bad[len(bad)-1] ^= 0xff
	blks[i] = bad
}
