package exp

import (
	"strings"
	"testing"

	tapejoin "repro"
)

// TestFirstTupleStreamingAdvantage pins the experiment's headline at
// the CI scale: on the dense point of the sweep, SYM-H's virtual
// time-to-first-tuple is at least 5× lower than the best materializing
// method's, every method is feasible on the experiment's resources,
// and every StopAfter=k run on a dense input actually stops at k.
func TestFirstTupleStreamingAdvantage(t *testing.T) {
	rows, err := FirstTuple(0.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3*len(firstTupleMethods) {
		t.Fatalf("%d rows, want %d", len(rows), 3*len(firstTupleMethods))
	}

	var sym, bestMat float64
	for _, r := range rows {
		if !r.Feasible {
			t.Errorf("%s at 2^%d infeasible: %s", r.Method, log2(r.KeySpace), r.Reason)
			continue
		}
		if r.FirstTuple <= 0 && r.Matches > 0 {
			t.Errorf("%s at 2^%d delivered %d pairs but has no first-tuple stamp",
				r.Method, log2(r.KeySpace), r.Matches)
		}
		// The dense point: plenty of matches, so k is always reached.
		if r.KeySpace == 1<<12 {
			if !r.Stopped || r.Matches != r.K {
				t.Errorf("%s dense: stopped=%v matches=%d, want stopped at k=%d",
					r.Method, r.Stopped, r.Matches, r.K)
			}
			v := r.FirstTuple.Seconds()
			if r.Method == tapejoin.SYMH {
				sym = v
			} else if bestMat == 0 || v < bestMat {
				bestMat = v
			}
		}
	}
	if sym <= 0 || bestMat <= 0 {
		t.Fatalf("dense point missing data: sym=%.1f bestMat=%.1f", sym, bestMat)
	}
	if bestMat < 5*sym {
		t.Errorf("SYM-H first tuple %.1fs vs best materializing %.1fs: advantage %.1fx, want >= 5x",
			sym, bestMat, bestMat/sym)
	}

	text := FormatFirstTuple(rows)
	if !strings.Contains(text, "First tuple") || !strings.Contains(text, "SYM-H") {
		t.Fatalf("render:\n%s", text)
	}
}
