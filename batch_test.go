package tapejoin_test

import (
	"strings"
	"testing"

	tapejoin "repro"
)

// batchFixture builds a system and a 6-query batch over two S
// cartridges and two R relations, fresh per call (media are stateful).
func batchFixture(t *testing.T, observe bool) (*tapejoin.System, []tapejoin.BatchQuery, []int64) {
	t.Helper()
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB: 16, DiskMB: 128, Profile: tapejoin.IdealTape, Observe: observe,
	})
	if err != nil {
		t.Fatal(err)
	}
	mkRel := func(name string, sizeMB int64, seed int64) *tapejoin.Relation {
		t.Helper()
		tp, err := sys.NewTape("tape-"+name, sizeMB+2)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := sys.CreateRelation(tp, tapejoin.RelationConfig{
			Name: name, SizeMB: sizeMB, KeySpace: 1 << 14, Seed: seed,
		})
		if err != nil {
			t.Fatal(err)
		}
		return rel
	}
	s1 := mkRel("S1", 32, 1)
	s2 := mkRel("S2", 32, 2)
	r1 := mkRel("R1", 4, 11)
	r2 := mkRel("R2", 4, 12)

	pairs := [][2]*tapejoin.Relation{
		{r1, s1}, {r2, s2}, {r1, s1}, {r2, s1}, {r1, s2}, {r2, s1},
	}
	var queries []tapejoin.BatchQuery
	var expected []int64
	for _, p := range pairs {
		queries = append(queries, tapejoin.BatchQuery{R: p[0], S: p[1]})
		expected = append(expected, tapejoin.ExpectedMatches(p[0], p[1]))
	}
	return sys, queries, expected
}

func TestRunBatchPolicies(t *testing.T) {
	makespans := map[tapejoin.BatchPolicy]int64{}
	for _, policy := range []tapejoin.BatchPolicy{
		tapejoin.BatchFIFO, tapejoin.BatchMountAware, tapejoin.BatchSharedScan,
	} {
		sys, queries, expected := batchFixture(t, false)
		rep, err := sys.RunBatch(queries, tapejoin.BatchOptions{
			Policy: policy, CacheMB: 16,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if rep.Policy != policy {
			t.Fatalf("policy echoed as %q", rep.Policy)
		}
		for i, qr := range rep.Queries {
			if qr.Failed {
				t.Fatalf("%s: query %s failed: %s", policy, qr.ID, qr.Reason)
			}
			if qr.Matches != expected[i] {
				t.Errorf("%s: query %s matches = %d, want %d", policy, qr.ID, qr.Matches, expected[i])
			}
		}
		if len(rep.Schedule) == 0 {
			t.Fatalf("%s: empty schedule log", policy)
		}
		makespans[policy] = int64(rep.Makespan)
	}
	if makespans[tapejoin.BatchSharedScan] >= makespans[tapejoin.BatchFIFO] {
		t.Fatalf("shared-scan makespan %d not below FIFO %d",
			makespans[tapejoin.BatchSharedScan], makespans[tapejoin.BatchFIFO])
	}
}

func TestRunBatchObserve(t *testing.T) {
	sys, queries, _ := batchFixture(t, true)
	rep, err := sys.RunBatch(queries, tapejoin.BatchOptions{CacheMB: 16})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Report == nil {
		t.Fatal("Observe set but Report nil")
	}
	metrics := rep.Report.MetricsText()
	for _, want := range []string{"workload_mounts_total", "workload_cache_hits_total"} {
		if !strings.Contains(metrics, want) {
			t.Errorf("metrics output missing %s", want)
		}
	}
}

func TestRunBatchValidation(t *testing.T) {
	sys, queries, _ := batchFixture(t, false)
	if _, err := sys.RunBatch(nil, tapejoin.BatchOptions{}); err == nil {
		t.Fatal("want error for empty batch")
	}
	if _, err := sys.RunBatch(queries, tapejoin.BatchOptions{Policy: "bogus"}); err == nil {
		t.Fatal("want error for unknown policy")
	}
	if _, err := sys.RunBatch([]tapejoin.BatchQuery{{}}, tapejoin.BatchOptions{}); err == nil {
		t.Fatal("want error for missing relations")
	}
}
