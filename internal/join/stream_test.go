package join

import (
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/device/filedev"
	"repro/internal/relation"
)

// totalIO sums every block a run moved on tape and disk — the "device
// work" a stopped run must undercut.
func totalIO(st Stats) int64 {
	return st.TapeBlocksRead + st.TapeBlocksWritten +
		st.DiskBlocksRead + st.DiskBlocksWritten
}

// TestStopAfterPrefixOracle is the prefix-consistency oracle: for every
// method on both backends, a StopAfter=n run must deliver exactly
// min(n, |R ⋈ S|) pairs, each of which appears in the full run's output
// multiset, with Stats.Stopped set iff the cut-off actually bit — and a
// stopped run must have moved strictly fewer blocks than the full run
// (early termination stops device work, it does not merely discard
// output).
func TestStopAfterPrefixOracle(t *testing.T) {
	c := oracleCase{
		name: "prefix", rBlocks: 24, sBlocks: 96, tuplesPerBlock: 4,
		keySpace: 150, seed: 31,
	}
	for _, be := range oracleBackends() {
		for _, m := range AllMethods() {
			m := m
			t.Run(be.name+"/"+m.Symbol(), func(t *testing.T) {
				res := be.res(t)

				full := &oracleSink{}
				fullRes, err := Run(m, c.build(t), res, full)
				if err != nil {
					t.Fatal(err)
				}
				total := full.Count()
				if total < 20 || total >= 1000 {
					t.Fatalf("full run has %d matches; oracle wants 20..999 so every cut-off is exercised", total)
				}
				universe := make(map[outputTriple]int, total)
				for _, tr := range full.triples {
					universe[tr]++
				}

				for _, n := range []int64{1, 10, 1000} {
					sink := &oracleSink{}
					result, err := RunWith(m, c.build(t), res, sink, ExecOptions{StopAfter: n})
					if err != nil {
						t.Fatalf("StopAfter=%d: %v", n, err)
					}
					want := n
					if total < n {
						want = total
					}
					if got := sink.Count(); got != want {
						t.Fatalf("StopAfter=%d delivered %d pairs, want exactly %d", n, got, want)
					}
					if stopped := result.Stats.Stopped; stopped != (n < total) {
						t.Fatalf("StopAfter=%d: Stopped = %v with %d total matches", n, stopped, total)
					}
					left := make(map[outputTriple]int, len(universe))
					for k, v := range universe {
						left[k] = v
					}
					for _, tr := range sink.triples {
						if left[tr] == 0 {
							t.Fatalf("StopAfter=%d emitted %+v more times than the full run", n, tr)
						}
						left[tr]--
					}
					if result.Stats.Stopped && totalIO(result.Stats) >= totalIO(fullRes.Stats) {
						t.Errorf("StopAfter=%d moved %d blocks, full run moved %d; stopping saved no device work",
							n, totalIO(result.Stats), totalIO(fullRes.Stats))
					}
				}
			})
		}
	}
}

// TestEarlyTerminationLeakFree runs every method to an immediate
// StopAfter=1 cut-off on the file backend and asserts the unwind is
// clean: no leftover scratch directories under the backend root and no
// leaked goroutines (ioengine workers, sim procs). Run under -race this
// is the early-termination leak detector.
func TestEarlyTerminationLeakFree(t *testing.T) {
	root := t.TempDir()
	baseline := runtime.NumGoroutine()

	for _, m := range AllMethods() {
		res := fastRes(24, 1024)
		res.Backend = filedev.New(root)
		result, err := RunWith(m, specWithSizes(t, 24, 96, 4), res, &CountSink{}, ExecOptions{StopAfter: 1})
		if err != nil {
			t.Fatalf("%s: %v", m.Symbol(), err)
		}
		if !result.Stats.Stopped {
			t.Fatalf("%s: run was not stopped", m.Symbol())
		}
	}

	ents, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() {
			t.Errorf("scratch directory %q leaked after early termination", e.Name())
		}
	}
	waitGoroutines(t, baseline)
}

// TestStreamSinkCancelStorm is the cancel storm: a fixed-seed sweep of
// random (method, cut-off) pairs terminated through the StreamSink
// Satisfied path — the cooperative signal the service layer uses for
// client disconnects — interleaved across both backends. Every run must
// unwind cleanly (no error, no leaked goroutines) and deliver at least
// its cut-off when enough matches exist.
func TestStreamSinkCancelStorm(t *testing.T) {
	baseline := runtime.NumGoroutine()
	methods := AllMethods()
	rng := rand.New(rand.NewSource(20260808))

	spec := specWithSizes(t, 24, 96, 4)
	total := relation.ExpectedMatches(spec.R, spec.S)

	for i := 0; i < 30; i++ {
		m := methods[rng.Intn(len(methods))]
		n := 1 + rng.Int63n(40)
		res := fastRes(24, 1024)
		backend := "sim"
		if rng.Intn(3) == 0 {
			res.Backend = filedev.New(t.TempDir())
			backend = "file"
		}
		sink := &StopSink{Inner: &CountSink{}, N: n}
		result, err := RunWith(m, specWithSizes(t, 24, 96, 4), res, sink, ExecOptions{})
		if err != nil {
			t.Fatalf("storm %d (%s/%s, N=%d): %v", i, backend, m.Symbol(), n, err)
		}
		// The Satisfied poll may overshoot by a batch, never undershoot.
		if got := sink.Count(); got < n && got < total {
			t.Fatalf("storm %d (%s/%s): %d pairs delivered, want >= min(%d, %d)",
				i, backend, m.Symbol(), got, n, total)
		}
		// Satisfied flips at unit granularity, so a run whose final unit
		// crosses the cut-off may finish instead of stopping — but then
		// it must have delivered the complete result.
		if !result.Stats.Stopped && sink.Count() != total {
			t.Fatalf("storm %d (%s/%s): not stopped yet only %d of %d pairs delivered (cut-off %d)",
				i, backend, m.Symbol(), sink.Count(), total, n)
		}
	}
	waitGoroutines(t, baseline)
}

// waitGoroutines polls until the goroutine count returns to the
// baseline (plus slack for the runtime's own background threads),
// failing the test if workers are still alive after two seconds.
func waitGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("%d goroutines alive, baseline %d; leaked workers?\n%s",
				runtime.NumGoroutine(), baseline, buf)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
