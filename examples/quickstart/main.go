// Quickstart: join two tape-resident relations with the library's
// default configuration and print what it cost.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	tapejoin "repro"
)

func main() {
	// A workstation-class device complex: 16 MB of memory, 100 MB of
	// disk scratch on two drives, two DLT-4000 tape drives.
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB: 16,
		DiskMB:   100,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Each relation lives on its own cartridge. The R cartridge gets
	// extra room because tape-tape methods append a hashed copy of R
	// to its scratch space.
	tapeR, err := sys.NewTape("cartridge-R", 512)
	if err != nil {
		log.Fatal(err)
	}
	tapeS, err := sys.NewTape("cartridge-S", 1024)
	if err != nil {
		log.Fatal(err)
	}

	r, err := sys.CreateRelation(tapeR, tapejoin.RelationConfig{
		Name: "customers", SizeMB: 200, KeySpace: 500_000, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	s, err := sys.CreateRelation(tapeS, tapejoin.RelationConfig{
		Name: "orders", SizeMB: 1000, KeySpace: 500_000, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// |R| = 200 MB exceeds the 100 MB of disk, so the disk-tape
	// methods cannot run; CTT-GH joins the two tapes directly.
	res, err := sys.Join(tapejoin.CTTGH, r, s)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s ⋈ %s via %s\n", r.Name(), s.Name(), res.Method)
	fmt.Printf("  matches         %d (expected %d)\n",
		res.Stats.Matches, tapejoin.ExpectedMatches(r, s))
	fmt.Printf("  response time   %v\n", res.Stats.Response.Round(0))
	fmt.Printf("  setup (Step I)  %v\n", res.Stats.StepI.Round(0))
	fmt.Printf("  bare tape read  %v\n", sys.BareReadTime(1200).Round(0))
	fmt.Printf("  iterations      %d, passes over R: %d\n",
		res.Stats.Iterations, res.Stats.RScans)
	fmt.Printf("  disk peak       %.1f MB of %v MB\n",
		res.Stats.DiskPeakMB, sys.Config().DiskMB)
}
