package sim

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickContainerConservation drives a random schedule of puts and
// gets through a container and checks conservation: units out never
// exceed units in, the level never exceeds capacity or goes negative,
// and when producers and consumers balance, the final level matches
// initial + puts - gets.
func TestQuickContainerConservation(t *testing.T) {
	f := func(chunks []uint8, capSeed uint8) bool {
		if len(chunks) == 0 {
			return true
		}
		if len(chunks) > 64 {
			chunks = chunks[:64]
		}
		capacity := int64(capSeed%32) + 8
		var total int64
		sizes := make([]int64, len(chunks))
		for i, c := range chunks {
			sizes[i] = int64(c)%capacity + 1
			total += sizes[i]
		}

		k := NewKernel()
		cont := NewContainer(k, "pool", capacity, 0)
		violated := false
		check := func() {
			if cont.Level() < 0 || cont.Level() > capacity {
				violated = true
			}
		}
		k.Spawn("producer", func(p *Proc) {
			for _, n := range sizes {
				cont.Put(p, n)
				check()
				p.Hold(time.Duration(n) * time.Millisecond)
			}
		})
		var got int64
		k.Spawn("consumer", func(p *Proc) {
			for _, n := range sizes {
				cont.Get(p, n)
				check()
				got += n
				if got > total {
					violated = true
				}
				p.Hold(time.Millisecond)
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return !violated && got == total && cont.Level() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickResourceSerialization checks that for any set of hold
// durations on a capacity-1 resource, the makespan equals the sum of
// the durations (perfect serialization, no lost or double-counted time).
func TestQuickResourceSerialization(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) > 32 {
			durs = durs[:32]
		}
		k := NewKernel()
		r := NewResource(k, "dev", 1)
		var sum time.Duration
		for i, d := range durs {
			dd := time.Duration(d) * time.Microsecond
			sum += dd
			name := "p" + string(rune('a'+i%26))
			k.Spawn(name, func(p *Proc) {
				r.Acquire(p)
				p.Hold(dd)
				r.Release(p)
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		return k.Now() == Time(sum) && r.BusyTime == sum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickQueuePreservesOrderAndContent checks FIFO delivery of an
// arbitrary item sequence through an arbitrary-capacity queue.
func TestQuickQueuePreservesOrderAndContent(t *testing.T) {
	f := func(items []int32, capSeed uint8) bool {
		if len(items) > 128 {
			items = items[:128]
		}
		capacity := int(capSeed%8) + 1
		k := NewKernel()
		q := NewQueue[int32](k, "q", capacity)
		k.Spawn("producer", func(p *Proc) {
			for _, v := range items {
				q.Send(p, v)
				p.Hold(time.Microsecond)
			}
			q.Close(p)
		})
		var got []int32
		k.Spawn("consumer", func(p *Proc) {
			for {
				v, ok := q.Recv(p)
				if !ok {
					return
				}
				got = append(got, v)
				p.Hold(3 * time.Microsecond)
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		if len(got) != len(items) {
			return false
		}
		for i := range items {
			if got[i] != items[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
