package relation

import (
	"testing"

	"repro/internal/tape"
)

func cfgR() Config {
	return Config{
		Name:           "R",
		Tag:            1,
		Blocks:         10,
		TuplesPerBlock: 8,
		KeySpace:       100,
		PayloadBytes:   4,
		Seed:           42,
	}
}

func TestWriteToTape(t *testing.T) {
	m := tape.NewMedia("t", 100)
	r, err := WriteToTape(cfgR(), m)
	if err != nil {
		t.Fatal(err)
	}
	if r.Region.N != 10 || r.Region.Start != 0 {
		t.Fatalf("region = %+v", r.Region)
	}
	if m.EOD() != 10 {
		t.Fatalf("EOD = %d", m.EOD())
	}
	if r.Tuples() != 80 {
		t.Fatalf("tuples = %d, want 80", r.Tuples())
	}
}

func TestWriteToTapeTooBig(t *testing.T) {
	m := tape.NewMedia("t", 5)
	if _, err := WriteToTape(cfgR(), m); err == nil {
		t.Fatal("want error for oversized relation")
	}
}

func TestValidate(t *testing.T) {
	good := cfgR()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Blocks = 0 },
		func(c *Config) { c.TuplesPerBlock = 0 },
		func(c *Config) { c.KeySpace = 0 },
		func(c *Config) { c.HotFraction = 2 },
		func(c *Config) { c.HotProb = -1 },
		func(c *Config) { c.PayloadBytes = -1 },
	}
	for i, mutate := range cases {
		c := cfgR()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("case %d: want validation error", i)
		}
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	m1 := tape.NewMedia("t1", 100)
	m2 := tape.NewMedia("t2", 100)
	r1, _ := WriteToTape(cfgR(), m1)
	r2, _ := WriteToTape(cfgR(), m2)
	c1, c2 := r1.KeyCounts(), r2.KeyCounts()
	if len(c1) != len(c2) {
		t.Fatalf("distinct keys differ: %d vs %d", len(c1), len(c2))
	}
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("key %d: %d vs %d", k, v, c2[k])
		}
	}
}

func TestKeyCountsMatchTapeContents(t *testing.T) {
	m := tape.NewMedia("t", 100)
	r, _ := WriteToTape(cfgR(), m)
	counts := r.KeyCounts()
	var total int64
	for _, v := range counts {
		total += v
	}
	if total != r.Tuples() {
		t.Fatalf("counts cover %d tuples, want %d", total, r.Tuples())
	}
	// Decode the tape blocks and compare key multiset.
	fromTape := make(map[uint64]int64)
	blks, err := m.ReadSetup(r.Region)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range blks {
		tag, tuples := blk.MustDecode()
		if tag != r.Tag {
			t.Fatalf("tag = %d", tag)
		}
		for _, tp := range tuples {
			fromTape[tp.Key]++
			if len(tp.Payload) != r.PayloadBytes {
				t.Fatalf("payload = %d bytes", len(tp.Payload))
			}
		}
	}
	for k, v := range counts {
		if fromTape[k] != v {
			t.Fatalf("key %d: generator says %d, tape has %d", k, v, fromTape[k])
		}
	}
}

func TestExpectedMatchesSelfJoin(t *testing.T) {
	// Self-join cardinality equals sum of squared multiplicities.
	m := tape.NewMedia("t", 100)
	r, _ := WriteToTape(cfgR(), m)
	var want int64
	for _, v := range r.KeyCounts() {
		want += v * v
	}
	if got := ExpectedMatches(r, r); got != want {
		t.Fatalf("self-join = %d, want %d", got, want)
	}
}

func TestExpectedMatchesDisjointKeySpaces(t *testing.T) {
	m := tape.NewMedia("t", 200)
	r, _ := WriteToTape(cfgR(), m)
	sCfg := cfgR()
	sCfg.Name, sCfg.Tag, sCfg.Seed = "S", 2, 7
	sCfg.KeySpace = 100
	s, _ := WriteToTape(sCfg, m)
	got := ExpectedMatches(r, s)
	// Overlapping uniform key spaces of 100 with 80 tuples each:
	// expect roughly 80*80/100 = 64 matches; exact value is
	// deterministic, just sanity-bound it.
	if got < 20 || got > 150 {
		t.Fatalf("matches = %d, outside sane range", got)
	}
}

func TestSkewedGenerator(t *testing.T) {
	c := cfgR()
	c.Blocks = 100
	c.KeySpace = 1000
	c.HotFraction = 0.01 // keys [0,10)
	c.HotProb = 0.5
	m := tape.NewMedia("t", 200)
	r, err := WriteToTape(c, m)
	if err != nil {
		t.Fatal(err)
	}
	counts := r.KeyCounts()
	var hot int64
	for k, v := range counts {
		if k < 10 {
			hot += v
		}
	}
	frac := float64(hot) / float64(r.Tuples())
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("hot fraction = %.2f, want ~0.5", frac)
	}
}
