package sim

import (
	"testing"
	"time"
)

func TestDeadlineExceededAndRemaining(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		dl := NewDeadline(p, Duration(10*time.Second))
		if dl.Exceeded(p) {
			t.Error("fresh deadline already exceeded")
		}
		if got := dl.Remaining(p); got != Duration(10*time.Second) {
			t.Errorf("remaining = %v, want 10s", got)
		}
		p.Hold(Duration(4 * time.Second))
		if dl.Exceeded(p) {
			t.Error("deadline exceeded at 4s of 10s")
		}
		if got := dl.Remaining(p); got != Duration(6*time.Second) {
			t.Errorf("remaining = %v, want 6s", got)
		}
		p.Hold(Duration(6 * time.Second))
		if !dl.Exceeded(p) {
			t.Error("deadline not exceeded at exactly 10s")
		}
		if got := dl.Remaining(p); got != 0 {
			t.Errorf("remaining = %v, want 0", got)
		}
		p.Hold(Duration(time.Second))
		if got := dl.Remaining(p); got != 0 {
			t.Errorf("remaining past deadline = %v, want clamped 0", got)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestZeroDeadlineExceedsImmediately(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) {
		dl := NewDeadline(p, 0)
		if !dl.Exceeded(p) {
			t.Error("zero-duration deadline should be exceeded at once")
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}
