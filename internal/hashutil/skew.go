package hashutil

import "sort"

// FreqSketch is a space-saving top-k frequency sketch (Metwally,
// Agrawal, El Abbadi: "Efficient computation of frequent and top-k
// elements in data streams"). It tracks at most cap keys; when a new
// key arrives at capacity it inherits the minimum tracked count, so a
// tracked key's count overestimates its true frequency by at most the
// minimum count at admission time. Any key holding more than
// Total/cap of the stream is guaranteed to be tracked, which is all
// the skew planner needs: heavy hitters surface, noise stays cheap.
type FreqSketch struct {
	cap    int
	counts map[uint64]int64
	errs   map[uint64]int64
	total  int64
}

// DefaultSketchK is the tracked-key capacity used when a caller does
// not choose one: enough to surface every key above ~1.5% of the
// stream, and small enough that the O(cap) eviction scan is noise.
const DefaultSketchK = 64

// NewFreqSketch returns a sketch tracking at most capacity keys
// (DefaultSketchK if capacity <= 0).
func NewFreqSketch(capacity int) *FreqSketch {
	if capacity <= 0 {
		capacity = DefaultSketchK
	}
	return &FreqSketch{
		cap:    capacity,
		counts: make(map[uint64]int64, capacity),
		errs:   make(map[uint64]int64, capacity),
	}
}

// Add observes one occurrence of key.
func (s *FreqSketch) Add(key uint64) {
	s.total++
	if _, ok := s.counts[key]; ok {
		s.counts[key]++
		return
	}
	if len(s.counts) < s.cap {
		s.counts[key] = 1
		return
	}
	// Evict the minimum-count key; ties broken by key for determinism.
	first := true
	var minK uint64
	var minC int64
	for k, c := range s.counts {
		if first || c < minC || (c == minC && k < minK) {
			first, minK, minC = false, k, c
		}
	}
	delete(s.counts, minK)
	delete(s.errs, minK)
	s.counts[key] = minC + 1
	s.errs[key] = minC
}

// Total returns the number of observations.
func (s *FreqSketch) Total() int64 { return s.total }

// Count returns the (over)estimated count of key, 0 if untracked.
func (s *FreqSketch) Count(key uint64) int64 { return s.counts[key] }

// HeavyKey is one tracked key with its estimated count.
type HeavyKey struct {
	Key   uint64
	Count int64
}

// TopK returns the tracked keys with estimated count >= minCount, in
// deterministic order: descending count, ascending key. Counts are
// corrected by each key's admission error so a late-arriving key that
// merely inherited a large minimum is not reported as heavy.
func (s *FreqSketch) TopK(minCount int64) []HeavyKey {
	out := make([]HeavyKey, 0, len(s.counts))
	for k, c := range s.counts {
		if c -= s.errs[k]; c >= minCount && c > 0 {
			out = append(out, HeavyKey{Key: k, Count: c})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Key < out[j].Key
	})
	return out
}

// IsolatedKey is a heavy hitter assigned a dedicated partition by a
// SkewPlan.
type IsolatedKey struct {
	Key    uint64
	Count  int64 // sketch estimate of the key's tuple count
	Bucket int   // primary bucket the key hashes to
	Part   int   // dedicated partition index
}

// SkewPlan refines a uniform Plan for a skewed key distribution: heavy
// keys get dedicated partitions (a single key cannot be split by any
// hash, so isolating it is the only way to stop it dragging hash-mates
// past the memory budget), and buckets still oversized after isolation
// are split by a secondary hash. Partition indices 0..Base.B-1 are the
// primary buckets; isolated and split partitions extend the index
// space to NParts. A heavy key whose dedicated partition alone exceeds
// the budget is irreducible and spills: the join phase loads it in
// memory-sized pieces (the multi-load path), which the plan prefers
// over replicating build rows.
type SkewPlan struct {
	// Base is the uniform plan being refined.
	Base Plan
	// Heavy lists the isolated keys, descending count.
	Heavy []IsolatedKey
	// Splits maps a primary bucket to its residual sub-partition count
	// (>= 2). Sub-partition 0 keeps the bucket's index; the rest live
	// at SubBase[bucket]..SubBase[bucket]+k-2.
	Splits map[int]int
	// SubBase maps a split bucket to the index of its first extra
	// sub-partition.
	SubBase map[int]int
	// NParts is the total partition count (Base.B when trivial).
	NParts int

	heavy map[uint64]int
}

// Trivial reports whether the plan is just the uniform base.
func (sp *SkewPlan) Trivial() bool {
	return sp == nil || (len(sp.Heavy) == 0 && len(sp.Splits) == 0)
}

// Partition maps a key to its final partition index in [0, NParts).
func (sp *SkewPlan) Partition(key uint64) int {
	if p, ok := sp.heavy[key]; ok {
		return p
	}
	h := Hash(key)
	b := int(h % uint64(sp.Base.B))
	if k, ok := sp.Splits[b]; ok {
		// The secondary hash uses the quotient bits the primary mod
		// consumed nothing of, so it is independent of bucket choice.
		if sub := int((h / uint64(sp.Base.B)) % uint64(k)); sub != 0 {
			return sp.SubBase[b] + sub - 1
		}
	}
	return b
}

// PartsOf returns the final partition indices fed by primary bucket b
// in deterministic order: the bucket itself, its extra sub-partitions,
// then isolated keys hashing to it.
func (sp *SkewPlan) PartsOf(b int) []int {
	parts := []int{b}
	if k, ok := sp.Splits[b]; ok {
		for i := 0; i < k-1; i++ {
			parts = append(parts, sp.SubBase[b]+i)
		}
	}
	for _, hk := range sp.Heavy {
		if hk.Bucket == b {
			parts = append(parts, hk.Part)
		}
	}
	return parts
}

// BuildSkewPlan refines base given the measured primary-bucket sizes
// (len(sizes) == base.B, in blocks) and the key-frequency sketch of
// the same stream. target is the per-partition block budget — a
// partition at or under target joins in a single memory load.
// maxParts caps the total partition count (each partition needs a
// write buffer when the probe relation is partitioned). The result is
// deterministic for deterministic inputs, which matters because
// recovery replays partitioning and must land on the same layout.
//
// Heavy keys are isolated first, largest first, while their bucket
// overflows the budget; remaining overflow — hash collisions among
// non-heavy keys — is split by the secondary hash. If maxParts stops
// the repair early the leftover oversize simply spills to multi-load,
// so the plan degrades gracefully rather than failing.
func BuildSkewPlan(base Plan, sizes []int64, sk *FreqSketch, tuplesPerBlock int, target int64, maxParts int) *SkewPlan {
	sp := &SkewPlan{
		Base:    base,
		Splits:  map[int]int{},
		SubBase: map[int]int{},
		NParts:  base.B,
		heavy:   map[uint64]int{},
	}
	if target < 1 || len(sizes) != base.B || tuplesPerBlock < 1 {
		return sp
	}
	rem := append([]int64(nil), sizes...)
	next := base.B
	blocksOf := func(tuples int64) int64 {
		return (tuples + int64(tuplesPerBlock) - 1) / int64(tuplesPerBlock)
	}
	if sk != nil {
		// Only keys that materially contribute — at least two blocks'
		// worth of tuples — are worth a dedicated partition.
		for _, hk := range sk.TopK(2 * int64(tuplesPerBlock)) {
			if next >= maxParts {
				break
			}
			b := Bucket(hk.Key, base.B)
			bl := blocksOf(hk.Count)
			if rem[b] <= target {
				continue
			}
			sp.Heavy = append(sp.Heavy, IsolatedKey{Key: hk.Key, Count: hk.Count, Bucket: b, Part: next})
			sp.heavy[hk.Key] = next
			next++
			if rem[b] -= bl; rem[b] < 0 {
				rem[b] = 0
			}
		}
	}
	for b, sz := range rem {
		if sz <= target || next >= maxParts {
			continue
		}
		k := int((sz + target - 1) / target)
		if room := maxParts - next + 1; k > room {
			k = room
		}
		if k < 2 {
			continue
		}
		sp.Splits[b] = k
		sp.SubBase[b] = next
		next += k - 1
	}
	sp.NParts = next
	return sp
}
