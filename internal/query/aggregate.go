package query

import (
	"fmt"
	"sort"

	"repro/internal/block"
	"repro/internal/sim"
)

// AggFn is an aggregate function.
type AggFn int

// Aggregate functions.
const (
	Count AggFn = iota
	Sum
	Min
	Max
)

func (f AggFn) String() string {
	return [...]string{"count", "sum", "min", "max"}[f]
}

// Agg is one aggregate output: Fn applied to Arg over each group.
// Count ignores Arg.
type Agg struct {
	Fn  AggFn
	Arg Expr
}

// check validates an aggregate against the schemas.
func (a Agg) check(rs, ss Schema) error {
	if a.Fn == Count {
		return nil
	}
	if a.Arg == nil {
		return fmt.Errorf("query: %v needs an argument", a.Fn)
	}
	t, err := a.Arg.Check(rs, ss)
	if err != nil {
		return err
	}
	switch a.Fn {
	case Sum:
		if t == String {
			return fmt.Errorf("query: sum over %v", t)
		}
	case Min, Max:
		// any comparable type
	}
	return nil
}

// aggState folds one group's running aggregate.
type aggState struct {
	n    int64
	sumI int64
	sumF float64
	min  Value
	max  Value
}

func (st *aggState) fold(fn AggFn, v Value) error {
	st.n++
	switch fn {
	case Count:
		return nil
	case Sum:
		switch x := v.(type) {
		case int64:
			st.sumI += x
		case float64:
			st.sumF += x
		default:
			return fmt.Errorf("query: sum over %T", v)
		}
	case Min, Max:
		if st.n == 1 {
			st.min, st.max = v, v
			return nil
		}
		less, err := valueLess(v, st.min)
		if err != nil {
			return err
		}
		if less {
			st.min = v
		}
		greater, err := valueLess(st.max, v)
		if err != nil {
			return err
		}
		if greater {
			st.max = v
		}
	}
	return nil
}

func (st *aggState) result(fn AggFn, argType Type) Value {
	switch fn {
	case Count:
		return st.n
	case Sum:
		if argType == Float64 {
			return st.sumF
		}
		return st.sumI
	case Min:
		return st.min
	case Max:
		return st.max
	}
	return nil
}

func valueLess(a, b Value) (bool, error) {
	switch x := a.(type) {
	case int64:
		y, ok := b.(int64)
		if !ok {
			return false, fmt.Errorf("query: comparing %T to %T", a, b)
		}
		return x < y, nil
	case float64:
		y, ok := b.(float64)
		if !ok {
			return false, fmt.Errorf("query: comparing %T to %T", a, b)
		}
		return x < y, nil
	case string:
		y, ok := b.(string)
		if !ok {
			return false, fmt.Errorf("query: comparing %T to %T", a, b)
		}
		return x < y, nil
	}
	return false, fmt.Errorf("query: cannot compare %T", a)
}

// groupKey renders group-by values into a map key.
func groupKey(vals []Value) string {
	key := ""
	for _, v := range vals {
		key += fmt.Sprintf("%T:%v|", v, v)
	}
	return key
}

// aggSink folds joined pairs into grouped aggregates on the output
// stream — the Section 3.2 pipelined-aggregate consumer.
type aggSink struct {
	q       *Query
	where   Expr
	groupBy []Expr
	aggs    []Agg
	argType []Type

	matches int64
	count   int64
	groups  map[string]*aggGroup
	err     error
}

// Emit implements join.Sink: decode, filter, fold.
func (as *aggSink) Emit(_ *sim.Proc, r, s block.Tuple) {
	as.matches++
	if as.err != nil {
		return
	}
	rRow, err := as.q.R.Schema.Decode(r.Key, r.Payload)
	if err != nil {
		as.err = err
		return
	}
	sRow, err := as.q.S.Schema.Decode(s.Key, s.Payload)
	if err != nil {
		as.err = err
		return
	}
	if as.where != nil {
		keep, err := as.where.Eval(rRow, sRow)
		if err != nil {
			as.err = err
			return
		}
		if keep.(int64) == 0 {
			return
		}
	}
	as.count++
	if err := as.foldPair(rRow, sRow); err != nil {
		as.err = err
	}
}

// Count implements join.Sink.
func (as *aggSink) Count() int64 { return as.matches }

type aggGroup struct {
	keyVals []Value
	states  []aggState
}

// foldPair applies the predicate and folds one joined pair.
func (as *aggSink) foldPair(rRow, sRow Row) error {
	vals := make([]Value, len(as.groupBy))
	for i, e := range as.groupBy {
		v, err := e.Eval(rRow, sRow)
		if err != nil {
			return err
		}
		vals[i] = v
	}
	key := groupKey(vals)
	g, ok := as.groups[key]
	if !ok {
		g = &aggGroup{keyVals: vals, states: make([]aggState, len(as.aggs))}
		as.groups[key] = g
	}
	for i, a := range as.aggs {
		var v Value
		if a.Fn != Count {
			var err error
			v, err = a.Arg.Eval(rRow, sRow)
			if err != nil {
				return err
			}
		}
		if err := g.states[i].fold(a.Fn, v); err != nil {
			return err
		}
	}
	return nil
}

// rows renders the grouped aggregates, sorted by group key for
// determinism: group-by values first, then one column per aggregate.
func (as *aggSink) rows() []Row {
	keys := make([]string, 0, len(as.groups))
	for k := range as.groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Row, 0, len(keys))
	for _, k := range keys {
		g := as.groups[k]
		row := append(Row{}, g.keyVals...)
		for i, a := range as.aggs {
			row = append(row, g.states[i].result(a.Fn, as.argType[i]))
		}
		out = append(out, row)
	}
	return out
}
