package fault

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestTransientRecoversAfterCount(t *testing.T) {
	s := (&Schedule{}).AddTransient("tape:R", 100, 2)
	op := Op{Device: "tape:R", Addr: 90, N: 20}
	for i := 0; i < 2; i++ {
		d := s.Decide(op)
		if d.Err == nil || !IsTransient(d.Err) {
			t.Fatalf("attempt %d: want transient error, got %v", i, d.Err)
		}
	}
	if d := s.Decide(op); d.Err != nil {
		t.Fatalf("third attempt should succeed, got %v", d.Err)
	}
}

func TestRuleMatchingScope(t *testing.T) {
	s := (&Schedule{}).AddTransient("tape:S", 50, 1)
	// Wrong device, non-overlapping window, and writes never match.
	for _, op := range []Op{
		{Device: "tape:R", Addr: 50, N: 1},
		{Device: "tape:S", Addr: 51, N: 10},
		{Device: "tape:S", Addr: 50, N: 1, Write: true},
	} {
		if d := s.Decide(op); d.Err != nil {
			t.Fatalf("op %+v should not match, got %v", op, d.Err)
		}
	}
	if d := s.Decide(Op{Device: "tape:S", Addr: 40, N: 20}); !IsTransient(d.Err) {
		t.Fatalf("overlapping read should fail, got %v", d.Err)
	}
}

func TestHardErrorPersists(t *testing.T) {
	s := (&Schedule{}).AddHard("tape:R", 7)
	for i := 0; i < 5; i++ {
		d := s.Decide(Op{Device: "tape:R", Addr: 0, N: 10})
		if !errors.Is(d.Err, ErrMedia) {
			t.Fatalf("attempt %d: want media error, got %v", i, d.Err)
		}
		if IsTransient(d.Err) {
			t.Fatal("hard error must not be transient")
		}
	}
}

func TestDiskFailActivatesAtTime(t *testing.T) {
	at := sim.Time(time.Hour)
	s := (&Schedule{}).AddDiskFail(2, at)
	if d := s.Decide(Op{Device: "disk2", Now: at - 1}); d.Err != nil {
		t.Fatalf("before activation: got %v", d.Err)
	}
	if d := s.Decide(Op{Device: "disk2", Now: at, Write: true}); !errors.Is(d.Err, ErrDeviceLost) {
		t.Fatalf("after activation (write): got %v", d.Err)
	}
	if d := s.Decide(Op{Device: "disk1", Now: at + 1}); d.Err != nil {
		t.Fatalf("other disk: got %v", d.Err)
	}
}

func TestCorruptAndStallDecisions(t *testing.T) {
	s := (&Schedule{}).AddCorrupt("disk", 5, 1).AddStall("tape:S", 3*time.Second, 1)
	if d := s.Decide(Op{Device: "disk", Addr: 0, N: 10}); !d.Corrupt {
		t.Fatalf("want corrupt decision, got %+v", d)
	}
	if d := s.Decide(Op{Device: "disk", Addr: 0, N: 10}); d.Corrupt {
		t.Fatal("corrupt count should be spent")
	}
	if d := s.Decide(Op{Device: "tape:S", Addr: 0, N: 1}); d.Stall != 3*time.Second {
		t.Fatalf("want 3s stall, got %v", d.Stall)
	}
}

func TestParseRoundTrip(t *testing.T) {
	s, err := Parse("transient=S:1000:2, hard=R:10, corrupt=disk:50, stall=R:5s:2, diskfail=1@30m, drivefail=S@1h")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 6 {
		t.Fatalf("want 6 rules, got %d", s.Len())
	}
	if d := s.Decide(Op{Device: "tape:S", Addr: 1000, N: 1}); !IsTransient(d.Err) {
		t.Fatalf("transient directive: got %v", d.Err)
	}
	if d := s.Decide(Op{Device: "tape:S", Now: sim.Time(time.Hour)}); !errors.Is(d.Err, ErrDriveLost) {
		t.Fatalf("drivefail directive: got %v", d.Err)
	}
	if d := s.Decide(Op{Device: "disk1", Now: sim.Time(30 * time.Minute)}); !errors.Is(d.Err, ErrDeviceLost) {
		t.Fatalf("diskfail directive: got %v", d.Err)
	}
}

func TestParseErrors(t *testing.T) {
	for _, spec := range []string{
		"bogus=1", "transient=S", "transient=Q:5", "hard=R:x",
		"diskfail=1", "diskfail=x@5s", "stall=R:fast", "random=abc",
	} {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) should fail", spec)
		}
	}
}

func TestRandomIsDeterministic(t *testing.T) {
	a := Random(42, 5, RandomConfig{})
	b := Random(42, 5, RandomConfig{})
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed must yield identical schedules")
	}
	c := Random(43, 5, RandomConfig{})
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds should differ")
	}
	// Identical decision streams for identical op sequences.
	ops := []Op{
		{Device: "tape:R", Addr: 10, N: 100},
		{Device: "disk", Addr: 0, N: 500},
		{Device: "tape:S", Addr: 2000, N: 64},
	}
	a2 := Random(42, 5, RandomConfig{})
	for _, op := range ops {
		d1, d2 := a.Decide(op), a2.Decide(op)
		if errors.Is(d1.Err, ErrTransient) != errors.Is(d2.Err, ErrTransient) ||
			d1.Corrupt != d2.Corrupt || d1.Stall != d2.Stall {
			t.Fatalf("decision divergence on %+v: %+v vs %+v", op, d1, d2)
		}
	}
}

func TestNilScheduleIsInert(t *testing.T) {
	var s *Schedule
	if d := Decide(s, Op{Device: "tape:R", Addr: 0, N: 1}); d != (Decision{}) {
		t.Fatalf("nil schedule decided %+v", d)
	}
	if !s.Empty() || s.Len() != 0 {
		t.Fatal("nil schedule should be empty")
	}
}
