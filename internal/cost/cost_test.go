package cost

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/block"
	"repro/internal/hashutil"
)

// fig13 builds the parameter point of Figures 1-3: |S| = 10|R|,
// D = 32M, X_D = 2 X_T, with |R| = ratio * M.
func fig13(ratio float64) Params {
	const m = 256
	r := int64(ratio * m)
	return Params{
		RBlocks: r, SBlocks: 10 * r,
		MBlocks: m, DBlocks: 32 * m,
		TapeRate: 1e6, DiskRate: 2e6,
	}
}

func est(t *testing.T, method string, p Params) Estimate {
	t.Helper()
	e := EstimateMethod(method, p)
	if e.Err != nil {
		t.Fatalf("%s at %+v: %v", method, p, e.Err)
	}
	return e
}

func TestValidate(t *testing.T) {
	good := fig13(2)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.RBlocks = 0
	if bad.Validate() == nil {
		t.Fatal("want error for |R|=0")
	}
	bad = good
	bad.SBlocks = bad.RBlocks - 1
	if bad.Validate() == nil {
		t.Fatal("want error for |S| < |R|")
	}
	bad = good
	bad.TapeRate = 0
	if bad.Validate() == nil {
		t.Fatal("want error for zero rate")
	}
}

func TestSReadBaseline(t *testing.T) {
	p := fig13(1)
	want := float64(p.SBlocks) * block.VirtualSize / p.TapeRate
	if got := p.SReadSeconds(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("SReadSeconds = %v, want %v", got, want)
	}
}

func TestUnknownMethod(t *testing.T) {
	e := EstimateMethod("XX", fig13(1))
	if e.Err == nil || !math.IsInf(e.Seconds, 1) {
		t.Fatal("unknown method should be infeasible")
	}
}

func TestEstimateAllCoversSevenMethods(t *testing.T) {
	ests := EstimateAll(fig13(2))
	if len(ests) != 7 {
		t.Fatalf("%d estimates", len(ests))
	}
	for _, e := range ests {
		if e.Err != nil {
			t.Fatalf("%s infeasible at an easy point: %v", e.Method, e.Err)
		}
		if e.Seconds <= 0 || e.StepISeconds <= 0 || e.StepISeconds > e.Seconds {
			t.Fatalf("%s: bad estimate %+v", e.Method, e)
		}
	}
}

// Figure 1 shape: for |R| comparable to M, NB methods' response climbs
// with |R|/M while hashing methods stay fairly constant; CDT-NB/MB is
// best near |R| = M but degrades fastest.
func TestFigure1Shapes(t *testing.T) {
	relAt := func(method string, ratio float64) float64 {
		p := fig13(ratio)
		return est(t, method, p).Relative(p)
	}

	// NB methods rise substantially from ratio 1 to 5.
	for _, m := range []string{"DT-NB", "CDT-NB/MB", "CDT-NB/DB"} {
		lo, hi := relAt(m, 1), relAt(m, 5)
		if hi < lo*1.8 {
			t.Errorf("%s: relative cost %0.2f -> %0.2f; want strong growth", m, lo, hi)
		}
	}
	// Hashing methods stay nearly flat over the same range.
	for _, m := range []string{"DT-GH", "CDT-GH", "CTT-GH"} {
		lo, hi := relAt(m, 1), relAt(m, 5)
		if hi > lo*1.4 {
			t.Errorf("%s: relative cost %0.2f -> %0.2f; want near-flat", m, lo, hi)
		}
	}
	// CDT-NB/MB beats DT-NB at ratio 1 but loses by ratio 5
	// ("increases much more rapidly ... because it has to perform
	// twice as many iterations").
	if relAt("CDT-NB/MB", 1) >= relAt("DT-NB", 1) {
		t.Error("CDT-NB/MB should win at |R| = M")
	}
	if relAt("CDT-NB/MB", 5) <= relAt("DT-NB", 5) {
		t.Error("DT-NB should win at |R| = 5M")
	}
}

// Figure 2 shape: as |R| approaches D = 32M, DT-GH and CDT-GH blow up
// (d -> 0) while CTT-GH stays largely unaffected; TT-GH's setup cost
// rules it out.
func TestFigure2Shapes(t *testing.T) {
	relAt := func(method string, ratio float64) float64 {
		p := fig13(ratio)
		return EstimateMethod(method, p).Relative(p)
	}
	for _, m := range []string{"DT-GH", "CDT-GH"} {
		mid, edge := relAt(m, 20), relAt(m, 31)
		if edge < 2*mid {
			t.Errorf("%s: %0.2f at 20M -> %0.2f at 31M; want blow-up near D", m, mid, edge)
		}
	}
	ctt20, ctt31 := relAt("CTT-GH", 20), relAt("CTT-GH", 31)
	if ctt31 > ctt20*1.5 {
		t.Errorf("CTT-GH: %0.2f -> %0.2f; want largely unaffected", ctt20, ctt31)
	}
	// TT-GH is far worse than CTT-GH in this range (high setup cost).
	if relAt("TT-GH", 20) < 2*relAt("CTT-GH", 20) {
		t.Error("TT-GH should be ruled out by its setup cost")
	}
}

// Figure 3 shape: far beyond M and D only the tape-tape methods remain
// feasible, and CTT-GH scales gracefully (sub-linear relative growth).
func TestFigure3Shapes(t *testing.T) {
	for _, m := range []string{"DT-NB", "CDT-NB/MB", "CDT-NB/DB", "DT-GH", "CDT-GH"} {
		p := fig13(60) // |R| = 60M > D = 32M
		if e := EstimateMethod(m, p); e.Err == nil {
			t.Errorf("%s should be infeasible at |R| = 60M", m)
		}
	}
	p60, p150 := fig13(60), fig13(150)
	r60 := est(t, "CTT-GH", p60).Relative(p60)
	r150 := est(t, "CTT-GH", p150).Relative(p150)
	if r150 > r60*(150.0/60.0) {
		t.Errorf("CTT-GH relative cost grows super-linearly: %0.2f at 60 -> %0.2f at 150", r60, r150)
	}
}

// Table 3 check: at the paper's Experiment 1 parameters the model's
// relative cost lands in the mid-single digits and decreases when |S|
// grows with everything else fixed (Join III -> Join IV).
func TestTable3RelativeCost(t *testing.T) {
	mb := func(megabytes int64) int64 { return megabytes * 16 } // 64 KB blocks
	joinIII := Params{
		RBlocks: mb(2500), SBlocks: mb(5000),
		MBlocks: mb(16), DBlocks: mb(500),
		TapeRate: 1.676e6, DiskRate: 2 * 1.676e6,
	}
	joinIV := joinIII
	joinIV.SBlocks = mb(10000)

	e3 := est(t, "CTT-GH", joinIII)
	e4 := est(t, "CTT-GH", joinIV)
	rel3 := e3.Seconds / (joinIII.tT(float64(joinIII.SBlocks + joinIII.RBlocks)))
	rel4 := e4.Seconds / (joinIV.tT(float64(joinIV.SBlocks + joinIV.RBlocks)))
	if rel3 < 3 || rel3 > 10 {
		t.Errorf("Join III relative cost = %0.1f, want mid-single digits", rel3)
	}
	if rel4 >= rel3 {
		t.Errorf("relative cost should fall with |S|: %0.2f -> %0.2f", rel3, rel4)
	}
}

func TestFeasibilityBoundaries(t *testing.T) {
	base := Params{RBlocks: 288, SBlocks: 2880, MBlocks: 28, DBlocks: 800,
		TapeRate: 1e6, DiskRate: 2e6}

	small := base
	small.MBlocks = 10 // < sqrt(288)
	for _, m := range []string{"DT-GH", "CDT-GH", "CTT-GH", "TT-GH"} {
		if e := EstimateMethod(m, small); e.Err == nil {
			t.Errorf("%s should need M >= sqrt(|R|)", m)
		}
	}

	noDisk := base
	noDisk.DBlocks = 100 // < |R|
	for _, m := range []string{"DT-NB", "CDT-NB/MB", "CDT-NB/DB", "DT-GH", "CDT-GH"} {
		if e := EstimateMethod(m, noDisk); e.Err == nil {
			t.Errorf("%s should need D >= |R|", m)
		}
	}
	// CTT-GH still runs with D < |R|.
	if e := EstimateMethod("CTT-GH", noDisk); e.Err != nil {
		t.Errorf("CTT-GH should run with D < |R|: %v", e.Err)
	}
}

func TestOverheadAndRelative(t *testing.T) {
	p := fig13(1)
	e := est(t, "CDT-GH", p)
	if math.Abs((e.Overhead(p)+1)-e.Relative(p)) > 1e-9 {
		t.Fatal("Overhead and Relative disagree")
	}
	bad := EstimateMethod("DT-NB", Params{RBlocks: 10, SBlocks: 100, MBlocks: 4, DBlocks: 5, TapeRate: 1, DiskRate: 1})
	if !math.IsInf(bad.Relative(p), 1) || !math.IsInf(bad.Overhead(p), 1) {
		t.Fatal("infeasible estimates should be +Inf")
	}
}

func TestAdvise(t *testing.T) {
	// Very large R beyond disk: CTT-GH is "the sole candidate".
	p := fig13(60)
	adv := Advise(p, Scratch{RTape: p.RBlocks * 2, STape: 0})
	if adv.Best != "CTT-GH" {
		t.Fatalf("best = %q, want CTT-GH", adv.Best)
	}
	if len(adv.Ranked) != 7 {
		t.Fatalf("ranked %d methods", len(adv.Ranked))
	}
	// Without tape scratch nothing is feasible.
	adv = Advise(p, Scratch{})
	if adv.Best != "" {
		t.Fatalf("best = %q, want none", adv.Best)
	}
	// Ample disk, little memory: CDT-GH wins (Section 10).
	p2 := Params{RBlocks: 288, SBlocks: 16000, MBlocks: 29, DBlocks: 800,
		TapeRate: 1.676e6, DiskRate: 2 * 1.676e6}
	adv = Advise(p2, Scratch{RTape: 10000, STape: 10000})
	if adv.Best != "CDT-GH" {
		got := strings.Join([]string{adv.Ranked[0].Method, adv.Ranked[1].Method}, ",")
		t.Fatalf("best = %q (top: %s), want CDT-GH", adv.Best, got)
	}
	// Large fraction of R in memory: CDT-NB/MB wins.
	p3 := p2
	p3.MBlocks = 280
	adv = Advise(p3, Scratch{RTape: 10000, STape: 10000})
	if adv.Best != "CDT-NB/MB" {
		t.Fatalf("best = %q, want CDT-NB/MB", adv.Best)
	}
	// Ranking is sorted.
	for i := 1; i < len(adv.Ranked); i++ {
		if adv.Ranked[i].Seconds < adv.Ranked[i-1].Seconds {
			t.Fatal("ranking not sorted")
		}
	}
}

func TestTTSMEstimate(t *testing.T) {
	p := fig13(4)
	e := EstimateMethod("TT-SM", p)
	if e.Err != nil {
		t.Fatal(e.Err)
	}
	// The baseline must be predicted slower than CTT-GH even under the
	// seek-free transfer-only model.
	ctt := EstimateMethod("CTT-GH", p)
	if e.Seconds <= ctt.Seconds {
		t.Fatalf("TT-SM %.0f s should exceed CTT-GH %.0f s", e.Seconds, ctt.Seconds)
	}
	// Tiny memory is infeasible.
	small := p
	small.MBlocks = 3
	if EstimateMethod("TT-SM", small).Err == nil {
		t.Fatal("M=3 should be infeasible for TT-SM")
	}
	// More memory means fewer merge passes, never more time.
	big := p
	big.MBlocks = p.MBlocks * 4
	if eb := EstimateMethod("TT-SM", big); eb.Seconds > e.Seconds {
		t.Fatalf("more memory slowed TT-SM: %.0f -> %.0f", e.Seconds, eb.Seconds)
	}
}

func TestQuickEstimatesWellFormed(t *testing.T) {
	// Feasible estimates are finite, positive, with StepI <= total and
	// monotone non-decreasing in |S|.
	f := func(rSeed, mSeed, dSeed uint8) bool {
		r := int64(rSeed)*8 + 64
		p := Params{
			RBlocks: r, SBlocks: 4 * r,
			MBlocks: int64(mSeed)%128 + 16, DBlocks: int64(dSeed)*16 + 2*r,
			TapeRate: 1e6, DiskRate: 2e6,
		}
		bigger := p
		bigger.SBlocks = 8 * r
		for _, m := range append(MethodSymbols(), "TT-SM") {
			e := EstimateMethod(m, p)
			if e.Err != nil {
				continue
			}
			if !(e.Seconds > 0) || math.IsInf(e.Seconds, 1) {
				return false
			}
			if e.StepISeconds <= 0 || e.StepISeconds > e.Seconds {
				return false
			}
			e2 := EstimateMethod(m, bigger)
			if e2.Err == nil && e2.Seconds < e.Seconds {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSkewInflatesGraceHash checks the skew extension of the model:
// with the heaviest key carrying MaxKeyFrac of the tuples (from
// hashutil.ZipfMaxKeyFrac for Zipf 0.99), every GH method's estimate
// inflates past its uniform value — the multi-load re-scans of the
// overweight bucket's S share — and SkewAware removes the penalty.
func TestSkewInflatesGraceHash(t *testing.T) {
	p := Params{
		RBlocks: 1024, SBlocks: 10240,
		MBlocks: 48, DBlocks: 2048,
		TapeRate: 1e6, DiskRate: 2e6,
	}
	frac := hashutil.ZipfMaxKeyFrac(0.99, 4096)
	if frac <= 0 || frac >= 1 {
		t.Fatalf("ZipfMaxKeyFrac(0.99, 4096) = %v", frac)
	}
	skewed, aware := p, p
	skewed.MaxKeyFrac = frac
	aware.MaxKeyFrac = frac
	aware.SkewAware = true
	for _, m := range []string{"DT-GH", "CDT-GH", "CTT-GH", "TT-GH"} {
		uni := est(t, m, p)
		sk := est(t, m, skewed)
		aw := est(t, m, aware)
		if sk.Seconds <= uni.Seconds {
			t.Fatalf("%s: skew did not inflate the estimate: %.1f vs %.1f",
				m, sk.Seconds, uni.Seconds)
		}
		if aw.Seconds != uni.Seconds {
			t.Fatalf("%s: SkewAware should cancel the penalty: %.1f vs %.1f",
				m, aw.Seconds, uni.Seconds)
		}
	}
	// The NB methods scan all of R per iteration regardless of key
	// distribution, so skew leaves them unchanged — and can therefore
	// flip the advisor's choice.
	for _, m := range []string{"DT-NB", "CDT-NB/MB", "CDT-NB/DB", "TT-SM"} {
		uni := est(t, m, p)
		sk := est(t, m, skewed)
		if sk.Seconds != uni.Seconds {
			t.Fatalf("%s: skew changed a non-GH estimate", m)
		}
	}
}

// TestValidateMaxKeyFrac rejects out-of-range key fractions.
func TestValidateMaxKeyFrac(t *testing.T) {
	p := fig13(4)
	for _, bad := range []float64{-0.1, 1.5} {
		p.MaxKeyFrac = bad
		if err := p.Validate(); err == nil {
			t.Fatalf("MaxKeyFrac %v passed Validate", bad)
		}
	}
	p.MaxKeyFrac = 0.5
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}
