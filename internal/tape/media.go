// Package tape simulates magnetic tape media and drives as the paper's
// cost model sees them: a sequential medium with a constant sustained
// transfer rate scaled by data compressibility, long repositioning
// seeks between distant locations, and optional stop/start penalties
// when streaming breaks. All sizes are in paper blocks (see package
// block); virtual transfer time is blocks * block.VirtualSize / rate.
package tape

import (
	"errors"
	"fmt"

	"repro/internal/block"
)

// Addr is a block address on a tape, counted from the beginning of
// data.
type Addr int64

// Region describes a contiguous range of blocks on a tape, e.g. a
// relation or a run of hash buckets.
type Region struct {
	Start Addr
	N     int64
}

// End returns the address one past the region.
func (r Region) End() Addr { return r.Start + Addr(r.N) }

// Sub returns the sub-region [off, off+n) within r.
func (r Region) Sub(off, n int64) Region {
	if off < 0 || n < 0 || off+n > r.N {
		panic(fmt.Sprintf("tape: Sub(%d,%d) out of region of %d blocks", off, n, r.N))
	}
	return Region{Start: r.Start + Addr(off), N: n}
}

// Media is a tape cartridge: an append-only sequence of blocks with a
// capacity. Reads may address any written block; writes only append at
// the end of data (the paper's scratch space is the tail of the tape).
type Media struct {
	name     string
	capacity int64
	blocks   []block.Block
	// readErrs holds injected hard media errors in insertion order —
	// an ordered slice, not a map, so error reporting is deterministic
	// when several injected errors overlap one read.
	readErrs []mediaErr
}

// mediaErr is one injected hard error on a media block.
type mediaErr struct {
	addr Addr
	err  error
}

// ErrTapeFull is returned when an append exceeds media capacity.
var ErrTapeFull = errors.New("tape: media full")

// NewMedia returns an empty cartridge holding at most capacity blocks.
func NewMedia(name string, capacity int64) *Media {
	if capacity <= 0 {
		panic(fmt.Sprintf("tape: media %q capacity %d", name, capacity))
	}
	return &Media{name: name, capacity: capacity}
}

// Name returns the cartridge name.
func (m *Media) Name() string { return m.name }

// Capacity returns the cartridge capacity in blocks.
func (m *Media) Capacity() int64 { return m.capacity }

// EOD returns the end-of-data address: the number of blocks written.
func (m *Media) EOD() Addr { return Addr(len(m.blocks)) }

// Free returns the remaining scratch space in blocks.
func (m *Media) Free() int64 { return m.capacity - int64(len(m.blocks)) }

// append adds blocks at end of data.
func (m *Media) append(blks []block.Block) (Region, error) {
	if int64(len(m.blocks)+len(blks)) > m.capacity {
		return Region{}, fmt.Errorf("%w: %q has %d free, need %d", ErrTapeFull, m.name, m.Free(), len(blks))
	}
	start := m.EOD()
	m.blocks = append(m.blocks, blks...)
	return Region{Start: start, N: int64(len(blks))}, nil
}

// read copies out the blocks in [addr, addr+n).
func (m *Media) read(addr Addr, n int64) ([]block.Block, error) {
	if addr < 0 || n < 0 || addr+Addr(n) > m.EOD() {
		return nil, fmt.Errorf("tape: read [%d,%d) beyond EOD %d on %q", addr, addr+Addr(n), m.EOD(), m.name)
	}
	for _, me := range m.readErrs {
		if me.addr >= addr && me.addr < addr+Addr(n) {
			return nil, fmt.Errorf("tape: %q block %d: %w", m.name, me.addr, me.err)
		}
	}
	out := make([]block.Block, n)
	copy(out, m.blocks[addr:addr+Addr(n)])
	return out, nil
}

// writeAt overwrites blocks starting at addr, extending EOD if the
// write runs past it. Writes may not leave gaps (addr <= EOD). Real
// tape writes invalidate data beyond the written region; we model the
// fixed-block overwrite-in-place mode some drives offer, which the
// sort-merge baseline's ping-pong workspaces rely on (a documented
// idealization in its favor).
func (m *Media) writeAt(addr Addr, blks []block.Block) error {
	n := int64(len(blks))
	if addr < 0 || addr > m.EOD() {
		return fmt.Errorf("tape: write at %d beyond EOD %d on %q", addr, m.EOD(), m.name)
	}
	if int64(addr)+n > m.capacity {
		return fmt.Errorf("%w: %q write [%d,%d) beyond capacity %d", ErrTapeFull, m.name, addr, int64(addr)+n, m.capacity)
	}
	for i, blk := range blks {
		pos := int(addr) + i
		if pos < len(m.blocks) {
			m.blocks[pos] = blk
		} else {
			m.blocks = append(m.blocks, blk)
		}
	}
	return nil
}

// InjectReadError makes any read covering addr fail with err — a hard
// media error, for failure-injection tests.
func (m *Media) InjectReadError(addr Addr, err error) {
	m.readErrs = append(m.readErrs, mediaErr{addr: addr, err: err})
}

// ClearReadErrors removes injected read errors, e.g. after a test
// exercises recovery from a repaired medium.
func (m *Media) ClearReadErrors() { m.readErrs = nil }

// Corrupt flips bits in the stored block at addr, simulating silent
// media corruption that only the block checksum catches.
func (m *Media) Corrupt(addr Addr) {
	if addr < 0 || addr >= m.EOD() {
		panic(fmt.Sprintf("tape: corrupt %d beyond EOD %d", addr, m.EOD()))
	}
	bad := append(block.Block(nil), m.blocks[addr]...)
	bad[len(bad)-1] ^= 0xff
	m.blocks[addr] = bad
}

// AppendSetup writes blocks at end of data outside of simulated time.
// It is used to prepare input relations before a join begins — the
// paper assumes tapes are written and loaded before the measured run.
func (m *Media) AppendSetup(blks []block.Block) (Region, error) {
	return m.append(blks)
}

// ReadSetup copies out a region's blocks outside of simulated time,
// for test verification and output checking.
func (m *Media) ReadSetup(r Region) ([]block.Block, error) {
	return m.read(r.Start, r.N)
}

// WriteSetup overwrites blocks starting at addr outside of simulated
// time, with writeAt's gap rule (addr <= EOD). File-backed drives use
// it to keep the authoritative medium in sync with their on-disk
// copy; the transfer itself is charged by the drive, not here.
func (m *Media) WriteSetup(addr Addr, blks []block.Block) error {
	return m.writeAt(addr, blks)
}

// Truncate discards all data from addr onward, releasing scratch
// space. Used between experiment runs to reset a cartridge.
func (m *Media) Truncate(addr Addr) {
	if addr < 0 || addr > m.EOD() {
		panic(fmt.Sprintf("tape: truncate at %d beyond EOD %d", addr, m.EOD()))
	}
	for i := int(addr); i < len(m.blocks); i++ {
		m.blocks[i] = nil
	}
	m.blocks = m.blocks[:addr]
}
