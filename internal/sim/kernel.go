package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Time is a virtual timestamp measured in nanoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of virtual time. It aliases time.Duration so the
// usual constants (time.Second, ...) can be used directly.
type Duration = time.Duration

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

func (t Time) String() string { return time.Duration(t).String() }

// procState tracks where a Proc is in its lifecycle.
type procState int

const (
	stateNew procState = iota
	stateReady
	stateRunning
	stateBlocked // waiting on a resource, container, queue or proc
	stateHolding // waiting for a scheduled clock event
	stateDone
)

func (s procState) String() string {
	switch s {
	case stateNew:
		return "new"
	case stateReady:
		return "ready"
	case stateRunning:
		return "running"
	case stateBlocked:
		return "blocked"
	case stateHolding:
		return "holding"
	case stateDone:
		return "done"
	}
	return "invalid"
}

// Proc is a simulation process. A Proc's body function runs on its own
// goroutine but only while the kernel has handed it the control token,
// so at most one Proc executes at any wall-clock instant.
type Proc struct {
	k      *Kernel
	id     int
	name   string
	state  procState
	resume chan struct{}
	err    error

	blockedOn string  // description of what the proc is blocked on
	waiters   []*Proc // procs blocked in Wait on this proc
}

// Name returns the name given to Spawn.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Kernel returns the kernel this process belongs to.
func (p *Proc) Kernel() *Kernel { return p.k }

// Err returns the error recorded for the process (a captured panic),
// or nil. Only meaningful after the process has finished.
func (p *Proc) Err() error { return p.err }

// Done reports whether the process body has returned.
func (p *Proc) Done() bool { return p.state == stateDone }

// event is a scheduled wakeup for a holding process.
type event struct {
	t    Time
	seq  int64 // tie-break for determinism
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)        { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any          { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peek() event        { return h[0] }
func (h *eventHeap) popEvent() event   { return heap.Pop(h).(event) }
func (h *eventHeap) pushEvent(e event) { heap.Push(h, e) }

// Kernel is a discrete-event simulation kernel. The zero value is not
// usable; call NewKernel.
type Kernel struct {
	now     Time
	events  eventHeap
	ready   []*Proc // runnable at the current time, FIFO
	yieldCh chan struct{}
	alive   int
	nextID  int
	nextSeq int64
	running bool
	current *Proc
	procs   []*Proc

	// asyncState holds the external-completion plumbing (see async.go).
	asyncState

	// EventsProcessed counts kernel scheduling decisions, exposed for
	// tests and diagnostics.
	EventsProcessed int64
}

// NewKernel returns a kernel with the clock at zero and no processes.
func NewKernel() *Kernel {
	return &Kernel{
		yieldCh:    make(chan struct{}),
		asyncState: asyncState{ioNotify: make(chan struct{}, 1)},
	}
}

// Now returns the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// Spawn creates a process named name whose body is fn and schedules it
// to run at the current virtual time. Spawn may be called before Run or
// from within a running process; it must not be called from a different
// goroutine while Run is active.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		state:  stateReady,
		resume: make(chan struct{}),
	}
	k.nextID++
	k.alive++
	k.procs = append(k.procs, p)
	k.ready = append(k.ready, p)
	go func() {
		<-p.resume
		defer k.finish(p)
		fn(p)
	}()
	return p
}

// finish runs on the process goroutine when the body returns or panics.
func (k *Kernel) finish(p *Proc) {
	if r := recover(); r != nil {
		p.err = fmt.Errorf("sim: process %q panicked: %v", p.name, r)
	}
	p.state = stateDone
	k.alive--
	for _, w := range p.waiters {
		k.makeReady(w)
	}
	p.waiters = nil
	k.yieldCh <- struct{}{}
}

// makeReady moves a blocked process to the ready queue at the current
// time. Only call with the control token held (i.e. from the running
// process or the kernel loop).
func (k *Kernel) makeReady(p *Proc) {
	if p.state == stateDone || p.state == stateReady {
		return
	}
	p.state = stateReady
	p.blockedOn = ""
	k.ready = append(k.ready, p)
}

// block yields control to the kernel and waits to be resumed. The
// caller must have set p.state and enqueued p somewhere it will be
// woken from (event heap, resource waiters, ...).
func (p *Proc) block() {
	p.k.yieldCh <- struct{}{}
	<-p.resume
	p.state = stateRunning
}

// Hold advances the process by d of virtual time. Negative durations
// are treated as zero. Other processes run during the hold, which is
// how overlapping I/O on independent devices overlaps in virtual time.
func (p *Proc) Hold(d Duration) {
	if d < 0 {
		d = 0
	}
	k := p.k
	k.nextSeq++
	k.events.pushEvent(event{t: k.now + Time(d), seq: k.nextSeq, proc: p})
	p.state = stateHolding
	p.blockedOn = "hold"
	p.block()
}

// Wait blocks until other's body has returned. Waiting on a finished
// process returns immediately. Returns the other process's error.
func (p *Proc) Wait(other *Proc) error {
	if other.state != stateDone {
		other.waiters = append(other.waiters, p)
		p.state = stateBlocked
		p.blockedOn = "wait:" + other.name
		p.block()
	}
	return other.err
}

// WaitAll waits for every process in others, returning the first
// non-nil error encountered (all processes are still waited for).
func (p *Proc) WaitAll(others ...*Proc) error {
	var first error
	for _, o := range others {
		if err := p.Wait(o); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// ErrDeadlock is wrapped by the error Run returns when live processes
// remain but none can make progress.
var ErrDeadlock = errors.New("sim: deadlock")

// Run drives the simulation until every process has finished. It
// returns an error if any process panicked or if the simulation
// deadlocks. Run must be called exactly once, from the goroutine that
// built the kernel.
func (k *Kernel) Run() error {
	if k.running {
		return errors.New("sim: Run called twice")
	}
	k.running = true
	for {
		// Integrate any external completions posted since the last
		// decision, so awaiting procs compete for the token as soon as
		// their I/O is done. No-op (and allocation-free) when the
		// backend never starts external operations.
		if k.ioPending > 0 {
			k.drainIO()
		}
		// Integrate a pending cancellation: publish the cause and abort
		// outstanding completions so io-blocked procs wake with it.
		if k.cancelPending.Load() {
			k.integrateCancel()
		}
		var p *Proc
		switch {
		case len(k.ready) > 0:
			p = k.ready[0]
			copy(k.ready, k.ready[1:])
			k.ready = k.ready[:len(k.ready)-1]
		case len(k.events) > 0:
			e := k.events.popEvent()
			if e.t < k.now {
				return fmt.Errorf("sim: time ran backwards: %v < %v", e.t, k.now)
			}
			k.now = e.t
			p = e.proc
		case k.ioPending > 0:
			// Every live proc is blocked and no event is pending, but
			// real I/O is in flight: wait for it in wall-clock time.
			// This is the moment independent device workers overlap.
			k.waitIO()
			continue
		case k.alive == 0:
			return k.collectErrors()
		default:
			return k.deadlockError()
		}
		if p.state == stateDone {
			continue
		}
		k.EventsProcessed++
		p.state = stateRunning
		k.current = p
		p.resume <- struct{}{}
		<-k.yieldCh
		k.current = nil
	}
}

func (k *Kernel) collectErrors() error {
	var errs []error
	for _, p := range k.procs {
		if p.err != nil {
			errs = append(errs, p.err)
		}
	}
	return errors.Join(errs...)
}

func (k *Kernel) deadlockError() error {
	var blocked []string
	for _, p := range k.procs {
		if p.state != stateDone {
			blocked = append(blocked, fmt.Sprintf("%s(%s on %s)", p.name, p.state, p.blockedOn))
		}
	}
	sort.Strings(blocked)
	err := fmt.Errorf("%w at t=%v: %d processes stuck: %s",
		ErrDeadlock, k.now, len(blocked), strings.Join(blocked, ", "))
	if pe := k.collectErrors(); pe != nil {
		err = errors.Join(err, pe)
	}
	return err
}
