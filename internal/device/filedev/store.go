package filedev

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/device/ioengine"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Store is file-backed disk scratch: every logical file is one OS
// file read and written at direct offsets, with the array geometry
// kept only for capacity accounting (NumDisks * BlocksPerDisk). Reads
// and writes charge their measured wall time; there is no seek model
// — that is what makes it a disk.
//
// All of the store's files share one I/O worker, so disk requests
// serialize against each other in wall-clock time (one array, one
// channel) but overlap with tape transfers. FIFO submission on the
// worker orders a file's planned writes before any later read of the
// same records.
type Store struct {
	k   *sim.Kernel
	cfg device.StoreConfig
	dir string
	b   *Backend
	w   *ioengine.Worker // nil when the backend is synchronous
	seq int

	used, high int64
	busy       sim.Duration
	stats      device.DiskStats
	closed     bool

	rec *trace.Recorder
	met storeMetrics
	inj fault.Injector
}

var _ device.Store = (*Store)(nil)

// storeMetrics mirrors the simulator array's exported series.
type storeMetrics struct {
	blocksRead    *obs.Counter
	blocksWritten *obs.Counter
	latency       *obs.Histogram
	used          *obs.Gauge
}

// Config implements device.Store.
func (s *Store) Config() device.StoreConfig { return s.cfg }

// TotalCapacity implements device.Store.
func (s *Store) TotalCapacity() int64 {
	return int64(s.cfg.NumDisks) * s.cfg.BlocksPerDisk
}

// Free implements device.Store.
func (s *Store) Free() int64 { return s.TotalCapacity() - s.used }

// Used implements device.Store.
func (s *Store) Used() int64 { return s.used }

// HighWater implements device.Store.
func (s *Store) HighWater() int64 { return s.high }

// ResetHighWater implements device.Store.
func (s *Store) ResetHighWater() { s.high = s.used }

// BusyTime implements device.Store.
func (s *Store) BusyTime() sim.Duration { return s.busy }

// DiskStats implements device.Store.
func (s *Store) DiskStats() device.DiskStats { return s.stats }

// DeadDisks implements device.Store: OS files do not lose platters.
func (s *Store) DeadDisks() []int { return nil }

// LiveDisks implements device.Store.
func (s *Store) LiveDisks() int { return s.cfg.NumDisks }

// SetRecorder implements device.Store.
func (s *Store) SetRecorder(r *trace.Recorder) { s.rec = r }

// SetInjector implements device.Store.
func (s *Store) SetInjector(inj fault.Injector) { s.inj = inj }

// SetMetrics implements device.Store.
func (s *Store) SetMetrics(reg *obs.Registry) {
	s.w.SetMetrics(reg)
	if reg == nil {
		s.met = storeMetrics{}
		return
	}
	s.met = storeMetrics{
		blocksRead:    reg.Counter("disk_blocks_read_total", "Blocks read from the disk array."),
		blocksWritten: reg.Counter("disk_blocks_written_total", "Blocks written to the disk array."),
		latency: reg.Histogram("disk_request_seconds",
			"Latency of disk requests.", obs.DeviceLatencyBuckets),
		used: reg.Gauge("disk_used_blocks", "Blocks currently allocated on the array."),
	}
}

// Create implements device.Store. placement is accepted for interface
// compatibility and ignored: OS files have no meaningful stripe
// placement.
func (s *Store) Create(name string, _ []int) (device.File, error) {
	if s.closed {
		return nil, fmt.Errorf("filedev: store is closed")
	}
	s.seq++
	path := filepath.Join(s.dir, fmt.Sprintf("%04d-%s.dat", s.seq, sanitize(name)))
	rf, err := s.b.createRecFile(path)
	if err != nil {
		return nil, err
	}
	return &File{s: s, name: name, rf: rf, path: path}, nil
}

// charge accounts n newly allocated blocks against capacity.
func (s *Store) charge(n int64) error {
	if s.used+n > s.TotalCapacity() {
		return fmt.Errorf("%w: need %d blocks, %d free", device.ErrDiskFull, n, s.Free())
	}
	s.used += n
	if s.used > s.high {
		s.high = s.used
	}
	s.met.used.Set(float64(s.used))
	return nil
}

// consult asks the fault injector about one file operation. The
// injector's OS-level verdict, if any, is armed on the file so it
// strikes the planned syscalls on the worker.
func (s *Store) consult(p *sim.Proc, name string, rf *recFile, write bool, off, n int64) (bool, error) {
	op := fault.Op{Device: "disk", Write: write, Addr: off, N: n, Now: p.Now()}
	dec := fault.Decide(s.inj, op)
	if dec.Stall > 0 {
		s.stats.Faults++
		s.stats.StallTime += dec.Stall
		t0 := p.Now()
		p.Hold(dec.Stall)
		s.rec.AddFor(p, trace.Event{Device: "disk", Kind: trace.Fault, Start: t0, End: p.Now(), Note: "stall"})
	}
	if dec.Err != nil {
		s.stats.Faults++
		return false, fmt.Errorf("filedev: file %q: %w", name, dec.Err)
	}
	if dec.Corrupt {
		s.stats.Faults++
	}
	if osd := fault.DecideOS(s.inj, op); !osd.Zero() {
		s.stats.Faults++
		rf.arm(osd)
	}
	return dec.Corrupt, nil
}

// transfer runs one planned file operation through the store's worker
// (or inline when synchronous) and charges its measured wall
// duration.
func (s *Store) transfer(p *sim.Proc, n int64, write bool, op func() error) error {
	tx := p.Now()
	elapsed, err := doIO(p, s.w, paced(s.b.pace(s.cfg.AggregateRate, n), op))
	switch {
	case errors.Is(err, ioengine.ErrDeviceFailed):
		// The shared disk worker's breaker tripped: all scratch is
		// unreachable. Surface it as a device loss so unit recovery
		// rebuilds the store (with a fresh worker) and re-stages.
		return fmt.Errorf("filedev: disk store: %w: %w", fault.ErrDeviceLost, err)
	case errors.Is(err, ioengine.ErrClosed):
		return fmt.Errorf("filedev: disk store: %w", err)
	case err != nil:
		return err
	}
	s.busy += elapsed
	s.stats.Requests++
	s.stats.TransferTime += elapsed
	if write {
		s.stats.BlocksWritten += n
		s.met.blocksWritten.Add(float64(n))
	} else {
		s.stats.BlocksRead += n
		s.met.blocksRead.Add(float64(n))
	}
	s.rec.AddFor(p, trace.Event{
		Device: "disk", Kind: kindOf(write),
		Start: tx, End: p.Now(), Blocks: n,
	})
	s.met.latency.Observe(sim.Duration(p.Now() - tx).Seconds())
	return nil
}

func kindOf(write bool) trace.Kind {
	if write {
		return trace.DiskWrite
	}
	return trace.DiskRead
}

// Close implements device.Store: it stops the store's I/O worker and
// removes the scratch directory. Safe to call more than once and
// after partial construction.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	s.w.Close()
	remove(s.dir)
	return nil
}

// File is one OS-file-backed scratch file.
type File struct {
	s     *Store
	name  string
	rf    *recFile
	path  string
	freed bool
}

var _ device.File = (*File)(nil)

// Name implements device.File.
func (f *File) Name() string { return f.name }

// Len implements device.File.
func (f *File) Len() int64 { return int64(len(f.rf.index)) }

// Lost implements device.File: OS-backed files do not lose extents.
func (f *File) Lost() bool { return false }

// Append implements device.File. Operating on a freed file is an
// error, not a panic: recovery paths that lose a race with cleanup
// must be able to degrade through the join's retry machinery.
func (f *File) Append(p *sim.Proc, blks []block.Block) error {
	if f.freed {
		return fmt.Errorf("filedev: append to %q: %w", f.name, ErrFreed)
	}
	n := int64(len(blks))
	corrupt, err := f.s.consult(p, f.name, f.rf, true, f.Len(), n)
	if err != nil {
		return err
	}
	if err := f.s.charge(n); err != nil {
		return err
	}
	plan, err := f.rf.planAppend(f.Len(), blks)
	if err != nil {
		return err
	}
	if err := f.s.transfer(p, n, true, func() error {
		return f.rf.execWrites(plan)
	}); err != nil {
		return err
	}
	_ = corrupt // stored-copy corruption is surfaced on read
	return nil
}

// ReadAt implements device.File: out-of-range requests fail with a
// typed error rather than an OS short read, and freed files return
// ErrFreed.
func (f *File) ReadAt(p *sim.Proc, off, n int64) ([]block.Block, error) {
	if f.freed {
		return nil, fmt.Errorf("filedev: read from %q: %w", f.name, ErrFreed)
	}
	if off < 0 || n < 0 || off+n > f.Len() {
		return nil, fmt.Errorf("filedev: read [%d,%d) beyond len %d of %q", off, off+n, f.Len(), f.name)
	}
	corrupt, err := f.s.consult(p, f.name, f.rf, false, off, n)
	if err != nil {
		return nil, err
	}
	plan, err := f.rf.planRead(off, n)
	if err != nil {
		return nil, err
	}
	if err := f.s.transfer(p, n, false, func() error {
		return f.rf.execReads(plan)
	}); err != nil {
		return nil, err
	}
	blks := assemble(plan)
	if corrupt {
		corruptDelivered(blks)
	}
	return blks, nil
}

// Free implements device.File.
func (f *File) Free() {
	if f.freed {
		return
	}
	f.freed = true
	f.s.used -= f.Len()
	f.s.met.used.Set(float64(f.s.used))
	f.rf.close()
	if f.path != "" {
		os.Remove(f.path)
	}
}
