package workload

import (
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/join"
	"repro/internal/relation"
	"repro/internal/sim"
	"repro/internal/tape"
	"repro/internal/trace"
)

// batch builds a fresh 9-query workload over three S cartridges and
// two R cartridges, interleaved so FIFO churns mounts: consecutive
// queries almost always need a different S cartridge, while several
// queries reuse the same R (cache fodder) and three share S1's
// relation exactly (shared-scan fodder). Media are stateful, so every
// policy run gets a fresh build.
type batch struct {
	cfg     Config
	queries []Query
	// expect maps query ID to the exact join cardinality.
	expect map[string]int64
}

func makeBatch(t *testing.T, policy Policy, cacheBlocks int64) *batch {
	t.Helper()
	mS1 := tape.NewMedia("S1", 4096)
	mS2 := tape.NewMedia("S2", 4096)
	mS3 := tape.NewMedia("S3", 4096)
	mRA := tape.NewMedia("RA", 4096)
	mRB := tape.NewMedia("RB", 4096)

	rel := func(name string, tag byte, blocks int64, seed int64, m tape.Medium) *relation.Relation {
		t.Helper()
		r, err := relation.WriteToTape(relation.Config{
			Name: name, Tag: tag, Blocks: blocks, TuplesPerBlock: 4,
			KeySpace: 200, PayloadBytes: 8, Seed: seed,
		}, m)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	s1 := rel("S1", 100, 96, 1, mS1)
	s2 := rel("S2", 101, 96, 2, mS2)
	s3 := rel("S3", 102, 96, 3, mS3)
	r1 := rel("R1", 1, 16, 11, mRA)
	r2 := rel("R2", 2, 16, 12, mRA)
	r3 := rel("R3", 3, 16, 13, mRB)
	r4 := rel("R4", 4, 16, 14, mRB)

	// Submission order alternates S cartridges on nearly every step.
	pairs := []struct {
		r *relation.Relation
		s *relation.Relation
	}{
		{r1, s1}, {r3, s2}, {r1, s1}, {r2, s3}, {r2, s1},
		{r4, s2}, {r1, s1}, {r3, s3}, {r1, s2},
	}
	b := &batch{expect: make(map[string]int64)}
	for i, pr := range pairs {
		q := Query{
			ID:     "q" + string(rune('0'+i)),
			Method: "CDT-NB/MB",
			R:      pr.r, S: pr.s,
		}
		b.queries = append(b.queries, q)
		b.expect[q.ID] = relation.ExpectedMatches(pr.r, pr.s)
	}
	b.cfg = Config{
		Resources: join.Resources{
			MemoryBlocks: 20,
			DiskBlocks:   400,
			NumDisks:     2,
			DiskRate:     2 * tape.Ideal().EffectiveRate(),
			Tape:         tape.Ideal(),
			IOChunk:      8,
		},
		Policy:      policy,
		CacheBlocks: cacheBlocks,
		MountTime:   30 * time.Second,
	}
	return b
}

func runBatch(t *testing.T, policy Policy, cacheBlocks int64) *BatchResult {
	t.Helper()
	b := makeBatch(t, policy, cacheBlocks)
	out, err := Run(b.cfg, b.queries)
	if err != nil {
		t.Fatal(err)
	}
	for _, qr := range out.Queries {
		if qr.Failed {
			t.Fatalf("query %s failed: %s", qr.ID, qr.Reason)
		}
		if want := b.expect[qr.ID]; qr.Matches != want {
			t.Errorf("%s (%s): matches = %d, want %d", qr.ID, qr.Method, qr.Matches, want)
		}
	}
	return out
}

func TestFIFOCorrectness(t *testing.T) {
	out := runBatch(t, FIFO, 0)
	if out.Makespan <= 0 {
		t.Fatal("zero makespan")
	}
	if out.SharedPasses != 0 {
		t.Fatalf("FIFO ran %d shared passes", out.SharedPasses)
	}
	// The interleaved order forces an S-cartridge switch on almost
	// every query.
	if out.SMounts < 7 {
		t.Fatalf("FIFO charged only %d S mounts; batch should thrash", out.SMounts)
	}
}

func TestMountAwareReducesMounts(t *testing.T) {
	fifo := runBatch(t, FIFO, 0)
	aware := runBatch(t, MountAware, 0)
	if aware.Mounts >= fifo.Mounts {
		t.Fatalf("mount-aware mounts = %d, want < FIFO's %d", aware.Mounts, fifo.Mounts)
	}
	// Three S cartridges: the grouped order mounts each exactly once.
	if aware.SMounts != 3 {
		t.Fatalf("mount-aware S mounts = %d, want 3", aware.SMounts)
	}
	if aware.Makespan >= fifo.Makespan {
		t.Fatalf("mount-aware makespan %v not better than FIFO %v", aware.Makespan, fifo.Makespan)
	}
}

func TestSharedScanBeatsFIFO(t *testing.T) {
	fifo := runBatch(t, FIFO, 0)
	shared := runBatch(t, SharedScan, 0)
	if shared.SharedPasses == 0 {
		t.Fatal("shared-scan policy ran no shared passes")
	}
	if shared.Makespan >= fifo.Makespan {
		t.Fatalf("shared-scan makespan %v not better than FIFO %v", shared.Makespan, fifo.Makespan)
	}
	// The three q*(R*, S1)-relation riders plus S2's pair should read
	// strictly less tape than nine solo S scans.
	if shared.TapeBlocksRead >= fifo.TapeBlocksRead {
		t.Fatalf("shared-scan tape reads %d not below FIFO's %d",
			shared.TapeBlocksRead, fifo.TapeBlocksRead)
	}
	var riders int
	for _, qr := range shared.Queries {
		if qr.Shared {
			riders++
			if qr.Method != "SHARED" {
				t.Fatalf("rider %s reports method %q", qr.ID, qr.Method)
			}
		}
	}
	if riders < 2 {
		t.Fatalf("only %d shared riders", riders)
	}
}

func TestStagingCacheHits(t *testing.T) {
	cold := runBatch(t, MountAware, 0)
	if cold.CacheHits != 0 {
		t.Fatalf("cache disabled but %d hits", cold.CacheHits)
	}
	warm := runBatch(t, MountAware, 64)
	if warm.CacheHits == 0 {
		t.Fatal("no cache hits despite repeated R relations")
	}
	var hits int
	for _, qr := range warm.Queries {
		if qr.CacheHit {
			hits++
		}
	}
	if int64(hits) != warm.CacheHits {
		t.Fatalf("per-query hits %d != batch hits %d", hits, warm.CacheHits)
	}
	// Cached R partitions replace tape re-reads.
	if warm.TapeBlocksRead >= cold.TapeBlocksRead {
		t.Fatalf("warm cache tape reads %d not below cold %d",
			warm.TapeBlocksRead, cold.TapeBlocksRead)
	}
}

func TestCacheEviction(t *testing.T) {
	// A cache that holds only one 16-block R forces evictions as the
	// batch alternates R relations.
	out := runBatch(t, MountAware, 16)
	if out.CacheEvictions == 0 {
		t.Fatal("no evictions despite 16-block cache and four R relations")
	}
}

// TestDeterministicSchedule is the reproducibility gate: the same
// batch and seed must yield a byte-identical schedule log, an
// identical device event trace, and deep-equal results.
func TestDeterministicSchedule(t *testing.T) {
	for _, policy := range []Policy{FIFO, MountAware, SharedScan} {
		t.Run(policy.String(), func(t *testing.T) {
			run := func() (*BatchResult, []trace.Event) {
				b := makeBatch(t, policy, 64)
				rec := &trace.Recorder{}
				b.cfg.Resources.Trace = rec
				out, err := Run(b.cfg, b.queries)
				if err != nil {
					t.Fatal(err)
				}
				return out, rec.Events
			}
			out1, ev1 := run()
			out2, ev2 := run()
			if s1, s2 := strings.Join(out1.Schedule, "\n"), strings.Join(out2.Schedule, "\n"); s1 != s2 {
				t.Fatalf("schedule logs differ:\n--- run1\n%s\n--- run2\n%s", s1, s2)
			}
			if !reflect.DeepEqual(out1, out2) {
				t.Fatal("batch results differ between identical runs")
			}
			if !reflect.DeepEqual(ev1, ev2) {
				t.Fatalf("event traces differ: %d vs %d events", len(ev1), len(ev2))
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	for _, p := range []Policy{FIFO, MountAware, SharedScan} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Fatalf("ParsePolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParsePolicy("nope"); err == nil {
		t.Fatal("want error for unknown policy")
	}
}

func TestAdvisorSubstitution(t *testing.T) {
	b := makeBatch(t, FIFO, 0)
	// Request a method that is infeasible on the query's disk
	// partition: CDT-NB/DB needs D >= |R| + Ms = 16 + 18 at M=20, but
	// the budget below only offers 24 blocks. The engine must
	// substitute a feasible method rather than fail.
	b.cfg.Resources.DiskBlocks = 24
	b.queries = b.queries[:1]
	b.queries[0].Method = "CDT-NB/DB"
	out, err := Run(b.cfg, b.queries)
	if err != nil {
		t.Fatal(err)
	}
	qr := out.Queries[0]
	if qr.Failed {
		t.Fatalf("query failed: %s", qr.Reason)
	}
	if !qr.Substituted || qr.Method == "TT-GH" {
		t.Fatalf("want substitution away from TT-GH, got method=%s substituted=%v",
			qr.Method, qr.Substituted)
	}
	if want := b.expect["q0"]; qr.Matches != want {
		t.Fatalf("matches = %d, want %d", qr.Matches, want)
	}
}

func TestQueueWaitMonotone(t *testing.T) {
	out := runBatch(t, FIFO, 0)
	var prev sim.Duration = -1
	for _, qr := range out.Queries {
		if qr.Wait < 0 || qr.End < qr.Start {
			t.Fatalf("query %s has bad interval [%v, %v]", qr.ID, qr.Start, qr.End)
		}
		if qr.Start < prev {
			t.Fatalf("FIFO start times not monotone at %s", qr.ID)
		}
		prev = qr.Start
	}
}
