// Command tapejoind runs the resident multi-tenant join daemon: an
// HTTP/JSON service over one long-lived device complex, with online
// cost-model admission, shared S-scan merging, per-tenant quotas and
// graceful drain on SIGTERM/SIGINT.
//
// It generates a deterministic synthetic catalog on startup (the same
// generator as cmd/tapejoin's batch mode) and serves:
//
//	POST /join       one join query (JSON body; JSONL response stream)
//	GET  /relations  the catalog
//	GET  /stats      admission + scheduler counters
//	GET  /metrics, /health, /flight, /debug/pprof   live telemetry
//
// Example:
//
//	tapejoind -addr 127.0.0.1:8080 -policy shared-scan -merge-window 50ms
//	curl -s http://127.0.0.1:8080/join -d '{"r":"R1","s":"S1","stream":true}'
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	tapejoin "repro"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		policy      = flag.String("policy", "mount-aware", "online policy: fifo, mount-aware, shared-scan")
		cacheMB     = flag.Float64("cache", 0, "staging-cache size (MB)")
		mergeWindow = flag.Duration("merge-window", 0, "hold a shared-scan seed this long for same-S arrivals")
		quota       = flag.Int("quota", 0, "per-tenant outstanding-query quota (0 = unlimited)")
		maxShared   = flag.Int("max-shared", 0, "max riders per shared S-pass (0 = default 4)")
		mountSecs   = flag.Float64("mount-seconds", 30, "cartridge exchange cost (virtual seconds)")
		memMB       = flag.Float64("mem", 8, "memory M (MB)")
		diskMB      = flag.Float64("disk", 64, "disk D (MB)")
		backend     = flag.String("backend", "sim", "storage backend: sim or file")
		filePace    = flag.Float64("file-pace", 0, "file backend: pace transfers to modeled rates sped up this factor")
		nS          = flag.Int("s-rels", 3, "number of S relations (one cartridge each)")
		nR          = flag.Int("r-rels", 4, "number of R relations (two per cartridge)")
		sMB         = flag.Int64("smb", 6, "size of each S relation (MB)")
		rMB         = flag.Int64("rmb", 1, "size of each R relation (MB)")
		seed        = flag.Int64("seed", 42, "dataset seed")
		keyspace    = flag.Uint64("keyspace", 2000, "join key space")
	)
	flag.Parse()
	if err := run(*addr, *policy, *cacheMB, *mergeWindow, *quota, *maxShared, *mountSecs,
		*memMB, *diskMB, *backend, *filePace, *nS, *nR, *sMB, *rMB, *seed, *keyspace); err != nil {
		fmt.Fprintln(os.Stderr, "tapejoind:", err)
		os.Exit(1)
	}
}

func run(addr, policy string, cacheMB float64, mergeWindow time.Duration,
	quota, maxShared int, mountSecs, memMB, diskMB float64, backend string, filePace float64,
	nS, nR int, sMB, rMB, seed int64, keyspace uint64) error {

	sys, err := tapejoin.NewSystem(tapejoin.Config{
		Backend:  backend,
		FilePace: filePace,
		MemoryMB: memMB,
		DiskMB:   diskMB,
	})
	if err != nil {
		return err
	}
	defer sys.Close()

	catalog, err := makeCatalog(sys, nS, nR, sMB, rMB, seed, keyspace)
	if err != nil {
		return err
	}

	svc, err := sys.StartService(tapejoin.ServiceOptions{
		Addr:         addr,
		Policy:       tapejoin.BatchPolicy(policy),
		CacheMB:      cacheMB,
		MountSeconds: mountSecs,
		MaxShared:    maxShared,
		MergeWindow:  mergeWindow,
		TenantQuota:  quota,
		Catalog:      catalog,
	})
	if err != nil {
		return err
	}
	fmt.Printf("tapejoind listening on %s  policy=%s  catalog=%d relations  M=%g MB  D=%g MB\n",
		svc.URL(), policy, len(catalog), memMB, diskMB)
	fmt.Println("endpoints: POST /join  GET /relations /stats /metrics /health /flight")

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	sig := <-sigs
	fmt.Printf("received %s: draining (in-flight queries finish, new work gets 503)\n", sig)
	if err := svc.Drain(); err != nil {
		return err
	}
	st := svc.Stats()
	fmt.Printf("drained: served=%d failed=%d mounts=%d shared-passes=%d\n",
		st.Engine.Served, st.Engine.Failed, st.Engine.Mounts, st.Engine.SharedPasses)
	return nil
}

// makeCatalog builds the deterministic synthetic dataset: nS large S
// relations on one cartridge each, nR small R relations packed two per
// cartridge — the same shape as cmd/tapejoin's batch mode, so mount
// churn and shared scans have something to bite on.
func makeCatalog(sys *tapejoin.System, nS, nR int, sMB, rMB, seed int64, keyspace uint64) (map[string]*tapejoin.Relation, error) {
	cat := make(map[string]*tapejoin.Relation, nS+nR)
	for i := 0; i < nS; i++ {
		t, err := sys.NewTape(fmt.Sprintf("tape-S%d", i+1), sMB+2)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("S%d", i+1)
		rel, err := sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: name, SizeMB: sMB,
			KeySpace: keyspace, Seed: seed + int64(100+i),
		})
		if err != nil {
			return nil, err
		}
		cat[name] = rel
	}
	for i := 0; i < nR; i++ {
		t, err := sys.NewTape(fmt.Sprintf("tape-R%d", i/2+1), 2*rMB+2)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("R%d", i+1)
		rel, err := sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: name, SizeMB: rMB,
			KeySpace: keyspace, Seed: seed + int64(i),
		})
		if err != nil {
			return nil, err
		}
		cat[name] = rel
	}
	return cat, nil
}
