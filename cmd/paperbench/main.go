// Command paperbench regenerates every table and figure of the
// paper's evaluation (Myllymaki & Livny, ICDE 1997):
//
//	paperbench -exp table2          # resource requirements, measured
//	paperbench -exp table3          # Experiment 1 (CTT-GH, Joins I-IV)
//	paperbench -exp fig1            # analytic: small |R|
//	paperbench -exp fig2            # analytic: medium |R|
//	paperbench -exp fig3            # analytic: large |R|
//	paperbench -exp fig4            # buffer utilization trace
//	paperbench -exp fig5            # Experiment 2 (disk space sweep)
//	paperbench -exp fig6..fig9      # Experiment 3 (memory sweep, 25%)
//	paperbench -exp fig10           # Experiment 3 at 0% compressible
//	paperbench -exp fig11           # Experiment 3 at 50% compressible
//	paperbench -exp ablations       # design-choice ablations
//	paperbench -exp recovery        # fault injection and recovery
//	paperbench -exp overlap         # per-phase critical path and device overlap
//	paperbench -exp workload        # multi-query batch scheduling policies
//	paperbench -exp firsttuple      # streaming: time-to-first-tuple and time-to-k
//	paperbench -exp chaos           # wall-clock fault tolerance on the file backend
//	paperbench -exp obsload         # instrumentation overhead vs budget
//	paperbench -exp skew            # uniform vs Zipf 0.99, skew-aware partitioning
//	paperbench -exp all             # everything
//
// -scale shrinks the workloads (1.0 = the paper's sizes; see package
// repro/internal/exp for what each experiment scales). -quick
// restricts the chaos experiment to its CI smoke subset. -obs-addr
// serves live telemetry (/metrics, /health, /flight, /debug/pprof)
// for whichever experiment run is currently in flight.
//
// The chaos experiment runs a fault matrix (transient syscall EIO,
// stuck workers, stored corruption, a device death mid-batch) against
// the file backend and asserts the robustness contract: every
// scenario either completes with the clean reference's exact payload
// hash or fails fast with a typed error — never a hang, never wrong
// tuples. Any violated scenario makes the command exit nonzero.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	tapejoin "repro"
	"repro/internal/exp"
	"repro/internal/obs/obsserver"
)

func main() {
	which := flag.String("exp", "all", "experiment: table2, table3, fig1..fig11, ablations, recovery, overlap, workload, firsttuple, chaos, obsload, skew, or all")
	scale := flag.Float64("scale", 1.0, "workload scale factor (1.0 = paper sizes)")
	format := flag.String("format", "text", "output format: text or json")
	backend := flag.String("backend", "sim", "storage backend for the overlap experiment: sim or file")
	quick := flag.Bool("quick", false, "chaos experiment: run only the CI smoke subset of the fault matrix")
	obsAddr := flag.String("obs-addr", "", "serve live telemetry (/metrics, /health, /flight, /debug/pprof) on this address while experiments run, e.g. 127.0.0.1:9100")
	flag.Parse()

	if *obsAddr != "" {
		srv := obsserver.New()
		addr, err := srv.Start(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "paperbench:", err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "obs server listening on http://%s (/metrics /health /flight /debug/pprof)\n", addr)
		exp.ObsServer = srv
	}

	var err error
	switch *format {
	case "text":
		err = run(strings.ToLower(*which), *scale, *backend, *quick)
	case "json":
		err = runJSON(strings.ToLower(*which), *scale, *backend, *quick)
	default:
		err = fmt.Errorf("unknown format %q", *format)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperbench:", err)
		os.Exit(1)
	}
}

// runJSON emits the requested experiments' raw rows as one JSON
// document, for downstream plotting.
func runJSON(which string, scale float64, backend string, quick bool) error {
	all := which == "all"
	out := map[string]any{"scale": scale}
	var chaosErr error

	for fig := 1; fig <= 3; fig++ {
		if all || which == fmt.Sprintf("fig%d", fig) {
			out[fmt.Sprintf("figure%d", fig)] = exp.AnalyticFigure(fig)
		}
	}
	if all || which == "table2" {
		rows, err := exp.Table2()
		if err != nil {
			return err
		}
		out["table2"] = rows
	}
	if all || which == "table3" {
		rows, err := exp.Table3(scale)
		if err != nil {
			return err
		}
		out["table3"] = rows
	}
	if all || which == "fig4" {
		rows, err := exp.Figure4(scale)
		if err != nil {
			return err
		}
		out["figure4"] = rows
	}
	if all || which == "fig5" {
		rows, err := exp.Figure5(scale)
		if err != nil {
			return err
		}
		out["figure5"] = rows
	}
	exp3 := map[string]tapejoin.Compression{
		"experiment3": tapejoin.Compress25,
		"figure10":    tapejoin.Compress0,
		"figure11":    tapejoin.Compress50,
	}
	keys := map[string]string{
		"experiment3": "fig6", "figure10": "fig10", "figure11": "fig11",
	}
	for name, comp := range exp3 {
		sel := keys[name]
		hit := all || which == sel ||
			(name == "experiment3" && (which == "fig7" || which == "fig8" || which == "fig9"))
		if !hit {
			continue
		}
		rows, err := exp.Experiment3(scale, comp)
		if err != nil {
			return err
		}
		out[name] = rows
	}
	if all || which == "ablations" {
		rows, err := exp.Ablations(scale)
		if err != nil {
			return err
		}
		out["ablations"] = rows
	}
	if all || which == "recovery" {
		rows, err := exp.FaultRecovery(scale)
		if err != nil {
			return err
		}
		out["recovery"] = rows
	}
	if all || which == "overlap" {
		rows, err := exp.Overlap(scale, backend)
		if err != nil {
			return err
		}
		out["overlap"] = rows
	}
	if all || which == "workload" {
		rows, err := exp.Workload(scale)
		if err != nil {
			return err
		}
		out["workload"] = rows
	}
	if all || which == "firsttuple" {
		rows, err := exp.FirstTuple(scale, quick)
		if err != nil {
			return err
		}
		out["firsttuple"] = rows
	}
	if all || which == "chaos" {
		rows := exp.Chaos(scale, quick)
		out["chaos"] = rows
		chaosErr = exp.ChaosVerdict(rows)
	}
	if all || which == "obsload" {
		rows, err := exp.Obsload(scale)
		if err != nil {
			return err
		}
		out["obsload"] = rows
		chaosErr = errors.Join(chaosErr, exp.ObsloadVerdict(rows))
	}
	if all || which == "skew" {
		rows, err := exp.Skew(scale, quick)
		if err != nil {
			return err
		}
		out["skew"] = rows
		chaosErr = errors.Join(chaosErr, exp.SkewVerdict(rows))
	}
	if len(out) == 1 {
		return fmt.Errorf("unknown experiment %q", which)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		return err
	}
	return chaosErr
}

func run(which string, scale float64, backend string, quick bool) error {
	all := which == "all"
	did := false
	start := time.Now()
	var chaosErr error

	section := func(title string) {
		fmt.Printf("== %s ==\n", title)
		did = true
	}

	for fig := 1; fig <= 3; fig++ {
		if all || which == fmt.Sprintf("fig%d", fig) {
			section(fmt.Sprintf("Figure %d: analytic response time relative to reading S (|S|=10|R|, D=32M, X_D=2X_T)", fig))
			fmt.Println(exp.FormatAnalytic(exp.AnalyticFigure(fig)))
		}
	}

	if all || which == "table2" {
		section("Table 2: resource requirements, measured against the implementations")
		rows, err := exp.Table2()
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatTable2(rows))
	}

	if all || which == "table3" {
		section("Table 3: Experiment 1 — Concurrent Tape-Tape Grace Hash Join")
		rows, err := exp.Table3(scale)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatTable3(rows))
	}

	if all || which == "fig4" {
		section("Figure 4: disk space utilization in CTT-GH Step II (Join III)")
		points, err := exp.Figure4(scale)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFigure4(points, 40))
	}

	if all || which == "fig5" {
		section("Figure 5: Experiment 2 — impact of disk space on CDT-GH and CTT-GH")
		rows, err := exp.Figure5(scale)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFigure5(rows))
	}

	needBase := all || which == "fig6" || which == "fig7" || which == "fig8" || which == "fig9"
	if needBase {
		rows, err := exp.Experiment3(scale, tapejoin.Compress25)
		if err != nil {
			return err
		}
		if all || which == "fig6" {
			section("Figure 6: disk space requirement vs memory size (Experiment 3)")
			fmt.Println(exp.FormatFigure6(rows))
		}
		if all || which == "fig7" {
			section("Figure 7: disk I/O traffic vs memory size (Experiment 3)")
			fmt.Println(exp.FormatFigure7(rows))
		}
		if all || which == "fig8" {
			section("Figure 8: response time vs memory size (Experiment 3, 25% compressible)")
			fmt.Println(exp.FormatFigure8(rows))
		}
		if all || which == "fig9" {
			section("Figure 9: relative join overhead (Experiment 3, 25% compressible)")
			fmt.Println(exp.FormatOverhead(rows, ""))
		}
	}

	if all || which == "fig10" {
		section("Figure 10: relative join overhead, slower tape (0% compressible)")
		rows, err := exp.Experiment3(scale, tapejoin.Compress0)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatOverhead(rows, ""))
	}

	if all || which == "fig11" {
		section("Figure 11: relative join overhead, faster tape (50% compressible)")
		rows, err := exp.Experiment3(scale, tapejoin.Compress50)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatOverhead(rows, ""))
	}

	if all || which == "ablations" {
		section("Ablations: the design choices, quantified")
		rows, err := exp.Ablations(scale)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatAblations(rows))
	}

	if all || which == "recovery" {
		section("Recovery: fault injection across the join methods")
		rows, err := exp.FaultRecovery(scale)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatRecovery(rows))
	}

	if all || which == "overlap" {
		section("Overlap: per-phase critical path and device overlap, all methods")
		rows, err := exp.Overlap(scale, backend)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatOverlap(rows))
	}

	if all || which == "workload" {
		section("Workload: multi-query batch under fifo / mount-aware / shared-scan scheduling")
		rows, err := exp.Workload(scale)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatWorkload(rows))
	}

	if all || which == "firsttuple" {
		section("First tuple: streaming SYM-H vs materializing methods, StopAfter=k")
		rows, err := exp.FirstTuple(scale, quick)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatFirstTuple(rows))
	}

	if all || which == "chaos" {
		section("Chaos: wall-clock fault tolerance on the file backend")
		rows := exp.Chaos(scale, quick)
		fmt.Println(exp.FormatChaos(rows))
		chaosErr = exp.ChaosVerdict(rows)
	}

	if all || which == "obsload" {
		section("Obsload: instrumentation overhead against its stated budgets")
		rows, err := exp.Obsload(scale)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatObsload(rows))
		chaosErr = errors.Join(chaosErr, exp.ObsloadVerdict(rows))
	}

	if all || which == "skew" {
		section("Skew: uniform vs Zipf 0.99 keys, uniform planner vs skew-aware partitioning")
		rows, err := exp.Skew(scale, quick)
		if err != nil {
			return err
		}
		fmt.Println(exp.FormatSkew(rows))
		chaosErr = errors.Join(chaosErr, exp.SkewVerdict(rows))
	}

	if !did {
		return fmt.Errorf("unknown experiment %q (want table2, table3, fig1..fig11, ablations, recovery, overlap, workload, firsttuple, chaos, obsload, skew, or all)", which)
	}
	fmt.Printf("(wall time %v)\n", time.Since(start).Round(time.Millisecond))
	return chaosErr
}
