package join

import (
	"fmt"

	"repro/internal/block"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/sim"
)

// nbSplit computes the Section-6 memory split for Nested Block
// methods: 10% of M (at least one block) scans R, the rest buffers S.
func nbSplit(m int64) (mr, ms int64) {
	mr = m / 10
	if mr < 1 {
		mr = 1
	}
	return mr, m - mr
}

// copyRToDisk is Step I of every disk–tape Nested Block method:
// relation R is copied from tape to a striped disk file, staging
// through main memory. A caller-staged copy (ExecOptions.StagedR)
// short-circuits the tape read entirely — the workload engine's
// cross-query cache hit.
func copyRToDisk(e *env, p *sim.Proc) (device.File, error) {
	if f := e.stagedR; f != nil && !f.Lost() {
		return f, nil
	}
	sp := e.span(p, "copy-R", obs.AInt("blocks", e.spec.R.Region.N))
	defer sp.Close(p)
	f, err := e.disks.Create("R", nil)
	if err != nil {
		return nil, err
	}
	e.mem.acquire(e.res.MemoryBlocks)
	defer e.mem.release(e.res.MemoryBlocks)
	keep := e.filterR()
	err = e.readTape(p, e.driveR, e.spec.R.Region, e.res.MemoryBlocks,
		func(_ int64, blks []block.Block) error {
			blks, _, err := filterRepack(blks, keep, e.spec.R.TuplesPerBlock, e.spec.R.Tag)
			if err != nil {
				return err
			}
			return f.Append(p, blks)
		})
	if err != nil {
		f.Free()
		return nil, err
	}
	e.stats.RScans++
	return f, nil
}

// ensureRFile (re)copies R to disk when it is absent or lost extents to
// a failed disk, paying a fresh tape scan of R.
func (e *env) ensureRFile(p *sim.Proc, fR *device.File) error {
	if *fR != nil && !(*fR).Lost() {
		return nil
	}
	if *fR != nil {
		e.freeR(*fR)
		*fR = nil
	}
	f, err := copyRToDisk(e, p)
	if err != nil {
		return err
	}
	*fR = f
	return nil
}

// freeR releases a method-owned R copy; a caller-owned staged file
// (ExecOptions.StagedR) is kept for future runs.
func (e *env) freeR(f device.File) {
	if f != nil && f != e.stagedR {
		f.Free()
	}
}

// scanRAndProbe performs the inner loop of a Nested Block iteration:
// scan the disk-resident R in mr-block requests and probe each R tuple
// against the in-memory table built over the current chunk of S.
func scanRAndProbe(e *env, p *sim.Proc, fR device.File, mr int64, table *hashTable) error {
	sp := e.span(p, "probe")
	defer sp.Close(p)
	e.mem.acquire(mr)
	defer e.mem.release(mr)
	for off := int64(0); off < fR.Len(); off += mr {
		n := min64(mr, fR.Len()-off)
		blks, err := e.diskRead(p, fR, off, n)
		if err != nil {
			return err
		}
		err = forEachTuple(blks, func(t block.Tuple) {
			table.probeWithR(e, p, t)
		})
		if err != nil {
			return err
		}
		if err := e.checkStop(); err != nil {
			return err
		}
	}
	e.stats.RScans++
	return nil
}

// nbJoinChunks is the sequential Step II of DT-NB and the recovery
// tail of the concurrent Nested Block variants: join ms-block chunks
// of S against disk-resident R starting at startOff. Each chunk is one
// restartable unit with staged output; ensureR re-stages R when a disk
// loss destroyed it.
func nbJoinChunks(e *env, p *sim.Proc, fR *device.File, ensureR func(*sim.Proc) error,
	mr, ms, startOff int64) error {

	s := e.spec.S.Region
	for off := startOff; off < s.N; off += ms {
		n := min64(ms, s.N-off)
		err := e.runUnit(p, fmt.Sprintf("S-chunk@%d", off), func(up *sim.Proc) error {
			sp := e.span(up, "join-chunk", obs.AInt("off", off))
			defer sp.Close(up)
			if err := ensureR(up); err != nil {
				return err
			}
			e.mem.acquire(n)
			defer e.mem.release(n)
			blks, err := e.tapeRead(up, e.driveS, s.Start+addr(off), n)
			if err != nil {
				return err
			}
			table := newHashTable()
			if err := table.addBlocksFiltered(blks, e.filterS()); err != nil {
				return err
			}
			return e.staged(up, func() error {
				return scanRAndProbe(e, up, *fR, mr, table)
			})
		})
		if err != nil {
			return err
		}
		e.stats.Iterations++
	}
	return nil
}

// DTNB is Disk–Tape Nested Block Join (Section 5.1.1): sequential;
// copy R to disk, then for each memory-sized chunk of S, scan R.
type DTNB struct{}

// Name implements Method.
func (DTNB) Name() string { return "Disk-Tape Nested Block Join" }

// Symbol implements Method.
func (DTNB) Symbol() string { return "DT-NB" }

// Check implements Method: D >= |R| (Table 2).
func (DTNB) Check(spec Spec, res Resources) error {
	if res.DiskBlocks < spec.R.Region.N {
		return fmt.Errorf("%w: D=%d < |R|=%d", ErrNeedDiskForR, res.DiskBlocks, spec.R.Region.N)
	}
	if res.MemoryBlocks < 2 {
		return fmt.Errorf("%w: M=%d < 2", ErrNeedMemory, res.MemoryBlocks)
	}
	return nil
}

func (DTNB) run(e *env, p *sim.Proc) error {
	var fR device.File
	ensure := func(up *sim.Proc) error { return e.ensureRFile(up, &fR) }
	if err := e.runUnit(p, "copy-R", ensure); err != nil {
		return err
	}
	e.markStepI(p)

	mr, ms := nbSplit(e.res.MemoryBlocks)
	if err := nbJoinChunks(e, p, &fR, ensure, mr, ms, 0); err != nil {
		return err
	}
	e.freeR(fR)
	return nil
}

// CDTNBMB is Concurrent Disk–Tape Nested Block Join with memory
// buffering (Section 5.1.3): two memory buffers for S let the next
// chunk stream from tape while the previous chunk joins with R, at the
// price of halving the chunk size.
type CDTNBMB struct{}

// Name implements Method.
func (CDTNBMB) Name() string {
	return "Concurrent Disk-Tape Nested Block Join with Memory Buffering"
}

// Symbol implements Method.
func (CDTNBMB) Symbol() string { return "CDT-NB/MB" }

// Check implements Method: D >= |R|, M splits into Mr plus two chunks.
func (CDTNBMB) Check(spec Spec, res Resources) error {
	if res.DiskBlocks < spec.R.Region.N {
		return fmt.Errorf("%w: D=%d < |R|=%d", ErrNeedDiskForR, res.DiskBlocks, spec.R.Region.N)
	}
	if _, ms := nbSplit(res.MemoryBlocks); ms < 2 {
		return fmt.Errorf("%w: M=%d cannot hold two S buffers", ErrNeedMemory, res.MemoryBlocks)
	}
	return nil
}

func (CDTNBMB) run(e *env, p *sim.Proc) error {
	var fR device.File
	ensure := func(up *sim.Proc) error { return e.ensureRFile(up, &fR) }
	if err := e.runUnit(p, "copy-R", ensure); err != nil {
		return err
	}
	e.markStepI(p)

	mr, msTotal := nbSplit(e.res.MemoryBlocks)
	ms := msTotal / 2 // each of the two buffers
	s := e.spec.S.Region

	type chunk struct {
		blks []block.Block
		off  int64
		n    int64
		err  error
	}
	// Two physical buffers: the reader may fill one while the joiner
	// drains the other. Interleaving is impossible here because the
	// joiner needs its chunk intact for the whole iteration (Section
	// 5.1.3 footnote), hence the buffer-count container.
	bufs := sim.NewContainer(e.k, "nb-bufs", 2, 2)
	q := sim.NewQueue[chunk](e.k, "nb-chunks", 1)

	reader := e.k.Spawn("s-reader", func(rp *sim.Proc) {
		for off := int64(0); off < s.N && !e.abort; off += ms {
			n := min64(ms, s.N-off)
			bufs.Get(rp, 1)
			e.mem.acquire(n)
			sp := e.span(rp, "stage-S", obs.AInt("off", off))
			blks, err := e.tapeRead(rp, e.driveS, s.Start+addr(off), n)
			sp.Close(rp)
			if err != nil {
				e.mem.release(n)
				bufs.Put(rp, 1)
				q.Send(rp, chunk{off: off, err: err})
				break
			}
			q.Send(rp, chunk{blks: blks, off: off, n: n})
		}
		q.Close(rp)
	})

	var pipeErr error
	nextOff := int64(0)
	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		if c.err != nil || pipeErr != nil {
			if c.err != nil && pipeErr == nil {
				pipeErr = c.err
			}
			if c.blks != nil {
				e.mem.release(c.n)
				bufs.Put(p, 1)
			}
			continue
		}
		sp := e.span(p, "join-chunk", obs.AInt("off", c.off))
		table := newHashTable()
		err := table.addBlocksFiltered(c.blks, e.filterS())
		if err == nil {
			err = e.staged(p, func() error { return scanRAndProbe(e, p, fR, mr, table) })
		}
		sp.Close(p)
		e.mem.release(c.n)
		bufs.Put(p, 1)
		if err != nil {
			pipeErr = err
			e.abort = true
			continue
		}
		e.stats.Iterations++
		nextOff = c.off + c.n
	}
	if err := p.Wait(reader); err != nil {
		return err
	}
	e.abort = false
	if pipeErr != nil {
		if e.res.Recovery.Disabled || !e.unitRecoverable(pipeErr) {
			return pipeErr
		}
		// Finish the rest of S sequentially, DT-NB style, re-staging R
		// if the fault destroyed it.
		if err := nbJoinChunks(e, p, &fR, ensure, mr, ms, nextOff); err != nil {
			return err
		}
	}
	e.freeR(fR)
	return nil
}

// CDTNBDB is Concurrent Disk–Tape Nested Block Join with disk
// buffering (Section 5.1.3): S is staged through a double-buffered
// disk area, so chunks are full memory size (twice CDT-NB/MB's) while
// tape input still overlaps the join.
type CDTNBDB struct{}

// Name implements Method.
func (CDTNBDB) Name() string {
	return "Concurrent Disk-Tape Nested Block Join with Disk Buffering"
}

// Symbol implements Method.
func (CDTNBDB) Symbol() string { return "CDT-NB/DB" }

// Check implements Method: D >= |R| + |S_i| (Table 2).
func (CDTNBDB) Check(spec Spec, res Resources) error {
	_, ms := nbSplit(res.MemoryBlocks)
	if ms < 1 {
		return fmt.Errorf("%w: M=%d", ErrNeedMemory, res.MemoryBlocks)
	}
	need := spec.R.Region.N + ms
	if res.DiskBlocks < need {
		return fmt.Errorf("%w: D=%d < |R|+|S_i|=%d", ErrNeedDiskForR, res.DiskBlocks, need)
	}
	return nil
}

func (CDTNBDB) run(e *env, p *sim.Proc) error {
	var fR device.File
	ensure := func(up *sim.Proc) error { return e.ensureRFile(up, &fR) }
	if err := e.runUnit(p, "copy-R", ensure); err != nil {
		return err
	}
	e.markStepI(p)

	mr, ms := nbSplit(e.res.MemoryBlocks)
	dbuf := e.newDoubleBuffer("s-dbuf", ms)
	chunkCap := dbuf.ChunkCapacity()
	s := e.spec.S.Region

	type chunk struct {
		iter int64
		file device.File
		off  int64
		n    int64
		err  error
	}
	q := sim.NewQueue[chunk](e.k, "db-chunks", 1)

	producer := e.k.Spawn("s-stager", func(rp *sim.Proc) {
		iter := int64(0)
		for off := int64(0); off < s.N && !e.abort; off += chunkCap {
			n := min64(chunkCap, s.N-off)
			sp := e.span(rp, "stage-S", obs.AInt("off", off))
			f, err := e.disks.Create("schunk", nil)
			if err != nil {
				sp.Close(rp)
				q.Send(rp, chunk{iter: iter, off: off, err: err})
				break
			}
			// Stage tape -> disk through a small transfer buffer
			// (ignored in M per Section 6), acquiring buffer space as
			// the previous iteration releases it.
			var acq int64
			var stageErr error
			for sub := int64(0); sub < n; sub += e.res.IOChunk {
				g := min64(e.res.IOChunk, n-sub)
				dbuf.Acquire(rp, iter, g)
				acq += g
				blks, err := e.tapeRead(rp, e.driveS, s.Start+addr(off+sub), g)
				if err == nil {
					err = f.Append(rp, blks)
				}
				if err != nil {
					stageErr = err
					break
				}
			}
			sp.Close(rp)
			if stageErr != nil {
				dbuf.Release(rp, iter, acq)
				f.Free()
				q.Send(rp, chunk{iter: iter, off: off, err: stageErr})
				break
			}
			q.Send(rp, chunk{iter: iter, file: f, off: off, n: n})
			iter++
		}
		q.Close(rp)
	})

	var pipeErr error
	nextOff := int64(0)
	for {
		c, ok := q.Recv(p)
		if !ok {
			break
		}
		if c.err != nil || pipeErr != nil {
			if c.err != nil && pipeErr == nil {
				pipeErr = c.err
			}
			if c.file != nil {
				dbuf.Release(p, c.iter, c.n)
				c.file.Free()
			}
			continue
		}
		// Read the staged chunk into memory, releasing buffer space
		// as it is consumed so the producer can refill it (the
		// interleaved scheme of Section 4).
		sp := e.span(p, "join-chunk", obs.AInt("off", c.off))
		err := func() error {
			e.mem.acquire(c.n)
			defer e.mem.release(c.n)
			table := newHashTable()
			keepS := e.filterS()
			for sub := int64(0); sub < c.n; sub += e.res.IOChunk {
				g := min64(e.res.IOChunk, c.n-sub)
				blks, err := e.diskRead(p, c.file, sub, g)
				if err != nil {
					dbuf.Release(p, c.iter, c.n-sub)
					c.file.Free()
					return err
				}
				if err := table.addBlocksFiltered(blks, keepS); err != nil {
					dbuf.Release(p, c.iter, c.n-sub)
					c.file.Free()
					return err
				}
				dbuf.Release(p, c.iter, g)
			}
			c.file.Free()
			return e.staged(p, func() error { return scanRAndProbe(e, p, fR, mr, table) })
		}()
		sp.Close(p)
		if err != nil {
			pipeErr = err
			e.abort = true
			continue
		}
		e.stats.Iterations++
		nextOff = c.off + c.n
	}
	if err := p.Wait(producer); err != nil {
		return err
	}
	e.abort = false
	if pipeErr != nil {
		if e.res.Recovery.Disabled || !e.unitRecoverable(pipeErr) {
			return pipeErr
		}
		// Finish the rest of S sequentially with direct tape reads,
		// memory-sized chunks at a time.
		if err := nbJoinChunks(e, p, &fR, ensure, mr, ms, nextOff); err != nil {
			return err
		}
	}
	e.freeR(fR)
	return nil
}
