package sim

import (
	"errors"
	"testing"
	"time"
)

// TestCancelAbortsAwait: a proc blocked in Await on a slow worker must
// wake with the cancel cause as soon as the kernel integrates Cancel,
// long before the worker posts; the late post is absorbed silently.
func TestCancelAbortsAwait(t *testing.T) {
	k := NewKernel()
	cause := errors.New("query abandoned")
	release := make(chan struct{})
	var got error
	k.Spawn("io", func(p *Proc) {
		c := p.StartIO("slow-read")
		worker(c, func() error { <-release; return nil })
		_, got = p.Await(c)
		if !c.Aborted() {
			t.Error("completion not marked aborted")
		}
	})
	go func() {
		time.Sleep(10 * time.Millisecond)
		k.Cancel(cause)
	}()
	done := make(chan error, 1)
	go func() { done <- k.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run wedged on a cancelled completion")
	}
	if !errors.Is(got, cause) {
		t.Errorf("Await err = %v, want cause", got)
	}
	if k.IOPending() != 0 {
		t.Errorf("IOPending = %d after cancel", k.IOPending())
	}
	// The worker's post after release must not panic the (finished)
	// kernel's inbox path.
	close(release)
	time.Sleep(20 * time.Millisecond)
	if got := k.CancelCause(); !errors.Is(got, cause) {
		t.Errorf("CancelCause = %v, want cause", got)
	}
}

// TestCancelFastFailsStartIO: once the cause is integrated, StartIO
// returns an already-aborted completion and Await fails without
// reaching a worker.
func TestCancelFastFailsStartIO(t *testing.T) {
	k := NewKernel()
	cause := errors.New("stop")
	k.Cancel(cause) // before Run: integrated on the first iteration
	k.Spawn("io", func(p *Proc) {
		if err := p.CancelCause(); !errors.Is(err, cause) {
			t.Errorf("CancelCause = %v, want cause", err)
		}
		c := p.StartIO("read")
		if !c.Aborted() {
			t.Error("StartIO on a cancelled kernel not pre-aborted")
		}
		if _, err := p.Await(c); !errors.Is(err, cause) {
			t.Errorf("Await err = %v, want cause", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelDefaultsToErrCancelled: Cancel(nil) integrates the
// sentinel, and the first cause wins over later ones.
func TestCancelDefaultsToErrCancelled(t *testing.T) {
	k := NewKernel()
	k.Cancel(nil)
	k.Cancel(errors.New("too late"))
	k.Spawn("p", func(p *Proc) {
		if err := p.CancelCause(); !errors.Is(err, ErrCancelled) {
			t.Errorf("CancelCause = %v, want ErrCancelled", err)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestCancelDoesNotDisturbRunnableProcs: cancellation is cooperative —
// procs that never look at CancelCause run to completion, holds and
// all, and Run still returns nil.
func TestCancelDoesNotDisturbRunnableProcs(t *testing.T) {
	k := NewKernel()
	k.Cancel(nil)
	steps := 0
	k.Spawn("busy", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Hold(time.Second)
			steps++
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if steps != 5 {
		t.Errorf("proc ran %d/5 steps under cancel", steps)
	}
	if k.Now() != Time(5*time.Second) {
		t.Errorf("clock = %v, want 5s", k.Now())
	}
}

// TestCancelWakesOnlyIOBlockedProcs: two procs, one io-blocked and one
// holding; cancel wakes the io-blocked one with the cause while the
// holder finishes its virtual wait normally.
func TestCancelWakesOnlyIOBlockedProcs(t *testing.T) {
	k := NewKernel()
	cause := errors.New("cut")
	release := make(chan struct{})
	defer close(release)
	var ioErr error
	var held bool
	k.Spawn("io", func(p *Proc) {
		c := p.StartIO("read")
		worker(c, func() error { <-release; return nil })
		_, ioErr = p.Await(c)
	})
	k.Spawn("holder", func(p *Proc) {
		p.Hold(3 * time.Second)
		held = true
	})
	go func() {
		time.Sleep(5 * time.Millisecond)
		k.Cancel(cause)
	}()
	done := make(chan error, 1)
	go func() { done <- k.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run wedged")
	}
	if !errors.Is(ioErr, cause) {
		t.Errorf("io proc err = %v, want cause", ioErr)
	}
	if !held {
		t.Error("holding proc did not complete its virtual wait")
	}
}
