// Package buffer implements the double-buffering disciplines of
// Section 4 of the paper for the disk area that stages chunks of S.
//
// The interleaved discipline shares one physical buffer between the
// two logical buffers of consecutive iterations: space released by the
// consumer of iteration i is immediately reusable by the producer of
// iteration i+1, so iteration size equals the full buffer and
// utilization stays near 100% (the paper's Figure 4).
//
// The split discipline is the naive alternative the paper argues
// against — two fixed halves — kept here as an ablation baseline: each
// chunk is half as large, doubling the number of iterations.
package buffer

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/sim"
)

// Sample is one point of the Figure-4 utilization trace: how many
// blocks each iteration parity holds at virtual time T.
type Sample struct {
	T    sim.Time
	Even int64 // blocks held by even-numbered iterations
	Odd  int64 // blocks held by odd-numbered iterations
}

// Total returns the combined usage.
func (s Sample) Total() int64 { return s.Even + s.Odd }

// DoubleBuffer is the space-management discipline for a
// producer/consumer pair working on consecutive iterations of a
// tertiary join.
type DoubleBuffer interface {
	// Acquire blocks until n blocks are available to iteration iter
	// and charges them to it.
	Acquire(p *sim.Proc, iter int64, n int64)
	// Release returns n blocks charged to iteration iter.
	Release(p *sim.Proc, iter int64, n int64)
	// ChunkCapacity is the largest chunk a single iteration may hold:
	// the full buffer for the interleaved discipline, half for split.
	ChunkCapacity() int64
	// Trace returns the utilization samples recorded so far.
	Trace() []Sample
	// SetMetrics registers an occupancy gauge and histogram in reg
	// (nil detaches).
	SetMetrics(reg *obs.Registry)
}

// bufferMetrics are a buffer's series exported to an obs.Registry; the
// nil-safe handles let record() call unconditionally.
type bufferMetrics struct {
	used      *obs.Gauge
	occupancy *obs.Histogram
}

func newBufferMetrics(reg *obs.Registry, name string) bufferMetrics {
	if reg == nil {
		return bufferMetrics{}
	}
	l := obs.A("buffer", name)
	return bufferMetrics{
		used: reg.Gauge("buffer_used_blocks", "Blocks currently held in the staging buffer.", l),
		occupancy: reg.Histogram("buffer_occupancy_ratio",
			"Buffer occupancy sampled at each acquire/release.", obs.OccupancyBuckets, l),
	}
}

func (m bufferMetrics) sample(total, capacity int64) {
	m.used.Set(float64(total))
	if capacity > 0 {
		m.occupancy.Observe(float64(total) / float64(capacity))
	}
}

// Interleaved is the shared-space discipline of Section 4.
type Interleaved struct {
	name  string
	space *sim.Container
	used  [2]int64
	trace []Sample
	met   bufferMetrics
}

var _ DoubleBuffer = (*Interleaved)(nil)

// NewInterleaved returns an interleaved double buffer over capacity
// blocks of disk space.
func NewInterleaved(k *sim.Kernel, name string, capacity int64) *Interleaved {
	return &Interleaved{name: name, space: sim.NewContainer(k, name, capacity, capacity)}
}

// SetMetrics implements DoubleBuffer.
func (b *Interleaved) SetMetrics(reg *obs.Registry) { b.met = newBufferMetrics(reg, b.name) }

// Acquire implements DoubleBuffer.
func (b *Interleaved) Acquire(p *sim.Proc, iter int64, n int64) {
	b.space.Get(p, n)
	b.used[iter&1] += n
	b.record(p)
}

// Release implements DoubleBuffer.
func (b *Interleaved) Release(p *sim.Proc, iter int64, n int64) {
	par := iter & 1
	if b.used[par] < n {
		panic(fmt.Sprintf("buffer: iteration %d releases %d but holds %d", iter, n, b.used[par]))
	}
	b.used[par] -= n
	b.record(p)
	b.space.Put(p, n)
}

// ChunkCapacity implements DoubleBuffer: the full buffer.
func (b *Interleaved) ChunkCapacity() int64 { return b.space.Capacity() }

// Trace implements DoubleBuffer.
func (b *Interleaved) Trace() []Sample { return b.trace }

func (b *Interleaved) record(p *sim.Proc) {
	b.trace = append(b.trace, Sample{T: p.Now(), Even: b.used[0], Odd: b.used[1]})
	b.met.sample(b.used[0]+b.used[1], b.space.Capacity())
}

// Split is the naive two-halves discipline.
type Split struct {
	name   string
	halves [2]*sim.Container
	used   [2]int64
	trace  []Sample
	met    bufferMetrics
}

var _ DoubleBuffer = (*Split)(nil)

// NewSplit returns a split double buffer: two independent halves of
// capacity/2 blocks each.
func NewSplit(k *sim.Kernel, name string, capacity int64) *Split {
	half := capacity / 2
	return &Split{name: name, halves: [2]*sim.Container{
		sim.NewContainer(k, name+"-even", half, half),
		sim.NewContainer(k, name+"-odd", half, half),
	}}
}

// SetMetrics implements DoubleBuffer.
func (b *Split) SetMetrics(reg *obs.Registry) { b.met = newBufferMetrics(reg, b.name) }

// Acquire implements DoubleBuffer.
func (b *Split) Acquire(p *sim.Proc, iter int64, n int64) {
	par := iter & 1
	b.halves[par].Get(p, n)
	b.used[par] += n
	b.record(p)
}

// Release implements DoubleBuffer.
func (b *Split) Release(p *sim.Proc, iter int64, n int64) {
	par := iter & 1
	if b.used[par] < n {
		panic(fmt.Sprintf("buffer: iteration %d releases %d but holds %d", iter, n, b.used[par]))
	}
	b.used[par] -= n
	b.record(p)
	b.halves[par].Put(p, n)
}

// ChunkCapacity implements DoubleBuffer: half the space.
func (b *Split) ChunkCapacity() int64 { return b.halves[0].Capacity() }

// Trace implements DoubleBuffer.
func (b *Split) Trace() []Sample { return b.trace }

func (b *Split) record(p *sim.Proc) {
	b.trace = append(b.trace, Sample{T: p.Now(), Even: b.used[0], Odd: b.used[1]})
	b.met.sample(b.used[0]+b.used[1], 2*b.halves[0].Capacity())
}

// MeanUtilization summarizes a trace as the time-weighted mean of
// total usage divided by capacity, over [start, end].
func MeanUtilization(trace []Sample, capacity int64, end sim.Time) float64 {
	if len(trace) == 0 || capacity == 0 || end == 0 {
		return 0
	}
	var area float64 // block-seconds
	for i, s := range trace {
		var until sim.Time
		if i+1 < len(trace) {
			until = trace[i+1].T
		} else {
			until = end
		}
		if until > s.T {
			area += float64(s.Total()) * (until.Seconds() - s.T.Seconds())
		}
	}
	return area / (float64(capacity) * end.Seconds())
}
