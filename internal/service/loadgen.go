package service

import (
	"bufio"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the daemon's proof harness: a deterministic seeded load
// generator and a concurrent replay client. GenLoad expands a LoadSpec
// into a reproducible query list; Replay drives it through hundreds of
// concurrent clients against a live daemon, verifying the service
// contract on the wire — every accepted query gets exactly one result
// line, none are lost, none are duplicated — and reporting wall-clock
// latency percentiles. Mount churn and shared-pass counts come from
// FetchStats, so a driver can put fifo, mount-aware and shared-scan
// side by side (see cmd/tapeload and the root service load test).

// LoadSpec describes a deterministic workload.
type LoadSpec struct {
	// Seed fixes the generated sequence.
	Seed int64
	// Queries is the total number of queries.
	Queries int
	// Tenants spreads queries across this many tenant labels
	// (default 1).
	Tenants int
	// Methods, when non-empty, is the pool of requested method symbols
	// ("" entries let the advisor pick).
	Methods []string
	// PriorityLevels draws priorities from [0, PriorityLevels)
	// (0 or 1 = all default priority).
	PriorityLevels int
	// StreamEvery marks every Nth query for pair streaming (0 = none).
	StreamEvery int
	// DeadlineMS applies this service deadline to every query
	// (0 = none).
	DeadlineMS int64
	// StopAfter, when positive, turns every query into a true LIMIT-n:
	// the daemon stops each join after this many pairs. Stop-after
	// queries are forced onto the stream so the replay can observe the
	// wall time to the first delivered pair.
	StopAfter int64
}

// GenLoad expands the spec into queries over the named relations. The
// same spec and name lists always produce the same queries, so a
// replay is comparable across policies and runs.
func GenLoad(spec LoadSpec, rNames, sNames []string) []Request {
	rng := rand.New(rand.NewSource(spec.Seed))
	tenants := spec.Tenants
	if tenants < 1 {
		tenants = 1
	}
	out := make([]Request, spec.Queries)
	for i := range out {
		req := Request{
			ID:         fmt.Sprintf("L%d", i),
			Tenant:     fmt.Sprintf("t%d", rng.Intn(tenants)),
			R:          rNames[rng.Intn(len(rNames))],
			S:          sNames[rng.Intn(len(sNames))],
			DeadlineMS: spec.DeadlineMS,
		}
		if len(spec.Methods) > 0 {
			req.Method = spec.Methods[rng.Intn(len(spec.Methods))]
		}
		if spec.PriorityLevels > 1 {
			req.Priority = rng.Intn(spec.PriorityLevels)
		}
		if spec.StreamEvery > 0 && i%spec.StreamEvery == 0 {
			req.Stream = true
		}
		if spec.StopAfter > 0 {
			req.StopAfter = spec.StopAfter
			req.Stream = true
		}
		out[i] = req
	}
	return out
}

// Outcome is one replayed query's observed result.
type Outcome struct {
	ID         string
	Tenant     string
	Failed     bool
	Reason     string
	Shared     bool
	CacheHit   bool
	Matches    int64
	OutputHash string
	Streamed   int64
	Dropped    int64
	Stopped    bool
	Latency    time.Duration
	// FirstPair is the wall time from POST to the first streamed pair
	// line (0 when the query streamed nothing) — the wire-level
	// time-to-first-tuple a stop-after replay reports on.
	FirstPair time.Duration
	// Results counts result lines received — anything but 1 is a
	// protocol violation.
	Results int
	// Err records a transport- or protocol-level failure ("" = clean).
	Err string
}

// Report is one replay run's aggregate.
type Report struct {
	// Outcomes holds one entry per query, keyed by ID.
	Outcomes map[string]*Outcome
	// Wall is the whole replay's duration; Clients the concurrency.
	Wall    time.Duration
	Clients int
	// Sent, OK, Failed and Broken partition the queries: Failed means
	// a well-formed failure result, Broken a transport/protocol error.
	Sent, OK, Failed, Broken int
	// P50, P90, P99 and Max summarize clean queries' wall latency.
	P50, P90, P99, Max time.Duration
	// FirstPairs counts queries that streamed at least one pair;
	// FP50 and FP99 summarize their wall time to that first pair.
	FirstPairs int
	FP50, FP99 time.Duration
}

// Replay drives the queries through `clients` concurrent connections
// against the daemon at baseURL, client i taking queries i, i+clients,
// i+2·clients, … Every query is accounted for in the report exactly
// once; lost or duplicated result lines surface as Broken outcomes.
func Replay(baseURL string, clients int, queries []Request) *Report {
	if clients < 1 {
		clients = 1
	}
	if clients > len(queries) && len(queries) > 0 {
		clients = len(queries)
	}
	rep := &Report{
		Outcomes: make(map[string]*Outcome, len(queries)),
		Clients:  clients,
		Sent:     len(queries),
	}
	httpc := &http.Client{
		Transport: &http.Transport{
			MaxIdleConns:        clients,
			MaxIdleConnsPerHost: clients,
		},
	}
	outcomes := make([]*Outcome, len(queries))
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; i < len(queries); i += clients {
				outcomes[i] = replayOne(httpc, baseURL, queries[i])
			}
		}(c)
	}
	wg.Wait()
	rep.Wall = time.Since(start)

	var lats, firsts []time.Duration
	for _, o := range outcomes {
		rep.Outcomes[o.ID] = o
		switch {
		case o.Err != "":
			rep.Broken++
		case o.Failed:
			rep.Failed++
		default:
			rep.OK++
		}
		if o.Err == "" {
			lats = append(lats, o.Latency)
			if o.FirstPair > 0 {
				firsts = append(firsts, o.FirstPair)
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	if n := len(lats); n > 0 {
		pct := func(q float64) time.Duration { return lats[int(q*float64(n-1))] }
		rep.P50, rep.P90, rep.P99, rep.Max = pct(0.50), pct(0.90), pct(0.99), lats[n-1]
	}
	sort.Slice(firsts, func(i, j int) bool { return firsts[i] < firsts[j] })
	if n := len(firsts); n > 0 {
		pct := func(q float64) time.Duration { return firsts[int(q*float64(n-1))] }
		rep.FirstPairs, rep.FP50, rep.FP99 = n, pct(0.50), pct(0.99)
	}
	return rep
}

// replayOne POSTs one query and consumes its JSONL response.
func replayOne(httpc *http.Client, baseURL string, q Request) *Outcome {
	o := &Outcome{ID: q.ID, Tenant: q.Tenant}
	body, err := json.Marshal(q)
	if err != nil {
		o.Err = "marshal: " + err.Error()
		return o
	}
	start := time.Now()
	resp, err := httpc.Post(baseURL+"/join", "application/json", strings.NewReader(string(body)))
	if err != nil {
		o.Err = "post: " + err.Error()
		return o
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var eb errorBody
		json.NewDecoder(resp.Body).Decode(&eb)
		o.Err = fmt.Sprintf("http %d: %s", resp.StatusCode, eb.Error)
		return o
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		var kind struct {
			Type string `json:"type"`
		}
		if err := json.Unmarshal(line, &kind); err != nil {
			o.Err = "bad line: " + err.Error()
			return o
		}
		switch kind.Type {
		case "accepted":
			// informational
		case "pair":
			if o.Streamed == 0 {
				o.FirstPair = time.Since(start)
			}
			o.Streamed++
		case "result":
			var res ResultLine
			if err := json.Unmarshal(line, &res); err != nil {
				o.Err = "bad result: " + err.Error()
				return o
			}
			if o.Results++; o.Results == 1 {
				o.Latency = time.Since(start)
				o.Failed, o.Reason = res.Failed, res.Reason
				o.Shared, o.CacheHit = res.Shared, res.CacheHit
				o.Matches, o.OutputHash = res.Matches, res.OutputHash
				o.Dropped = res.StreamDropped
				o.Stopped = res.Stopped
				if res.ID != q.ID {
					o.Err = fmt.Sprintf("result for %q, want %q", res.ID, q.ID)
				}
			}
		default:
			o.Err = "unknown line type " + kind.Type
			return o
		}
	}
	if err := sc.Err(); err != nil && o.Err == "" {
		o.Err = "read: " + err.Error()
	}
	if o.Results != 1 && o.Err == "" {
		o.Err = fmt.Sprintf("%d result lines, want 1", o.Results)
	}
	return o
}

// Summary renders the report for logs: one line of counts, one of
// latency percentiles, and — when any query streamed pairs — one of
// time-to-first-pair percentiles.
func (r *Report) Summary() string {
	s := fmt.Sprintf(
		"sent=%d ok=%d failed=%d broken=%d clients=%d wall=%v\nlatency p50=%v p90=%v p99=%v max=%v",
		r.Sent, r.OK, r.Failed, r.Broken, r.Clients, r.Wall.Round(time.Millisecond),
		r.P50.Round(time.Millisecond), r.P90.Round(time.Millisecond),
		r.P99.Round(time.Millisecond), r.Max.Round(time.Millisecond))
	if r.FirstPairs > 0 {
		s += fmt.Sprintf("\nfirst-pair p50=%v p99=%v (over %d streamed queries)",
			r.FP50.Round(time.Millisecond), r.FP99.Round(time.Millisecond), r.FirstPairs)
	}
	return s
}

// FetchStats scrapes GET /stats.
func FetchStats(baseURL string) (*StatsBody, error) {
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var st StatsBody
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil, fmt.Errorf("stats decode: %w", err)
	}
	return &st, nil
}

// FetchRelations scrapes GET /relations.
func FetchRelations(baseURL string) ([]RelationInfo, error) {
	resp, err := http.Get(baseURL + "/relations")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var rows []RelationInfo
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		return nil, fmt.Errorf("relations decode: %w", err)
	}
	return rows, nil
}

// SplitCatalog partitions a catalog listing into R-side (smaller) and
// S-side (larger) relation names by block count — the heuristic for
// generated datasets, where the build relations are strictly smaller
// than the probe relations. Relations on the boundary go to the R
// side; if every relation is the same size the split is by media, so
// both sides are always non-empty for any catalog with two media.
func SplitCatalog(rows []RelationInfo) (rNames, sNames []string) {
	if len(rows) == 0 {
		return nil, nil
	}
	min, max := rows[0].Blocks, rows[0].Blocks
	for _, row := range rows {
		if row.Blocks < min {
			min = row.Blocks
		}
		if row.Blocks > max {
			max = row.Blocks
		}
	}
	if min == max {
		media := rows[0].Media
		for _, row := range rows {
			if row.Media == media {
				rNames = append(rNames, row.Name)
			} else {
				sNames = append(sNames, row.Name)
			}
		}
		return rNames, sNames
	}
	mid := (min + max) / 2
	for _, row := range rows {
		if row.Blocks <= mid {
			rNames = append(rNames, row.Name)
		} else {
			sNames = append(sNames, row.Name)
		}
	}
	return rNames, sNames
}
