package tapejoin_test

import (
	"fmt"
	"log"

	tapejoin "repro"
)

// Example joins two tape-resident relations with the paper's
// Concurrent Tape-Tape Grace Hash Join and verifies the result.
func Example() {
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB: 2,
		DiskMB:   10,
		Profile:  tapejoin.IdealTape,
	})
	if err != nil {
		log.Fatal(err)
	}
	tapeR, _ := sys.NewTape("r-cartridge", 32) // room for the hashed copy
	tapeS, _ := sys.NewTape("s-cartridge", 16)
	r, _ := sys.CreateRelation(tapeR, tapejoin.RelationConfig{
		Name: "R", SizeMB: 4, KeySpace: 1000, Seed: 1})
	s, _ := sys.CreateRelation(tapeS, tapejoin.RelationConfig{
		Name: "S", SizeMB: 16, KeySpace: 1000, Seed: 2})

	res, err := sys.Join(tapejoin.CTTGH, r, s)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("matches:", res.Stats.Matches == tapejoin.ExpectedMatches(r, s))
	fmt.Println("passes over R:", res.Stats.RScans > 1)
	// Output:
	// matches: true
	// passes over R: true
}

// ExampleSystem_Advise ranks the join methods for a configuration
// where R is far larger than the available disk: only the tape-tape
// method survives, the paper's Section 10 conclusion.
func ExampleSystem_Advise() {
	sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: 16, DiskMB: 500})
	if err != nil {
		log.Fatal(err)
	}
	ranked := sys.Advise(2500, 10000, 5000, 0) // |R|=2.5 GB, |S|=10 GB
	fmt.Println("best:", ranked[0].Method, ranked[0].Feasible)
	feasible := 0
	for _, e := range ranked {
		if e.Feasible {
			feasible++
		}
	}
	fmt.Println("feasible methods:", feasible)
	// Output:
	// best: CTT-GH true
	// feasible methods: 1
}

// ExampleSystem_Estimate predicts a join's cost from the analytical
// model without running the simulation.
func ExampleSystem_Estimate() {
	sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: 16, DiskMB: 500})
	if err != nil {
		log.Fatal(err)
	}
	e := sys.Estimate(tapejoin.CTTGH, 2500, 5000)
	fmt.Println("feasible:", e.Feasible)
	fmt.Println("several times the bare read:", e.RelativeCost > 2 && e.RelativeCost < 12)
	// Output:
	// feasible: true
	// several times the bare read: true
}

// ExampleSystem_RunQuery runs a relational query — predicate and
// projection over a tape-to-tape equi-join — with the join method
// chosen by the cost model.
func ExampleSystem_RunQuery() {
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB: 2, DiskMB: 24, Profile: tapejoin.IdealTape})
	if err != nil {
		log.Fatal(err)
	}
	tapeA, _ := sys.NewTape("accounts", 64)
	tapeO, _ := sys.NewTape("orders", 64)
	accounts, _ := sys.CreateTable(tapeA, tapejoin.TableSpec{
		Name: "accounts", SizeMB: 2, KeySpace: 400, Seed: 3,
		Columns: []tapejoin.Column{
			{Name: "id", Type: tapejoin.Int64Col},
			{Name: "tier", Type: tapejoin.StringCol},
		},
		Rows: func(ordinal int64, key uint64) []tapejoin.Value {
			if key%4 == 0 {
				return []tapejoin.Value{"vip"}
			}
			return []tapejoin.Value{"std"}
		},
	})
	orders, _ := sys.CreateTable(tapeO, tapejoin.TableSpec{
		Name: "orders", SizeMB: 8, KeySpace: 400, Seed: 4,
		Columns: []tapejoin.Column{
			{Name: "account", Type: tapejoin.Int64Col},
			{Name: "amount", Type: tapejoin.FloatCol},
		},
		Rows: func(ordinal int64, key uint64) []tapejoin.Value {
			return []tapejoin.Value{float64(ordinal % 100)}
		},
	})

	res, err := sys.RunQuery(tapejoin.QuerySpec{
		R: accounts, S: orders,
		Where:  tapejoin.Cmp(tapejoin.Eq, tapejoin.RCol("tier"), tapejoin.Lit("vip")),
		Select: []tapejoin.Expr{tapejoin.RCol("id"), tapejoin.SCol("amount")},
		Limit:  3,
	})
	if err != nil {
		log.Fatal(err)
	}
	// The vip predicate is single-sided, so the planner pushes it into
	// the join itself: matches drop before any pairing happens.
	fmt.Println("some vip matches:", res.Count > 0)
	fmt.Println("rows capped:", len(res.Rows) <= 3)
	// Output:
	// some vip matches: true
	// rows capped: true
}
