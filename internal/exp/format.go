package exp

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"repro/internal/cost"
)

// FormatTable renders rows as an aligned text table.
func FormatTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// secs renders a duration as whole seconds, like the paper's tables.
func secs(d time.Duration) string {
	return fmt.Sprintf("%.0f sec.", d.Seconds())
}

// FormatTable3 renders Experiment 1 in the layout of the paper's
// Table 3.
func FormatTable3(rows []Table3Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		out = append(out, []string{
			r.Join,
			fmt.Sprintf("%d", r.SMB),
			fmt.Sprintf("%d", r.RMB),
			fmt.Sprintf("%d", r.DMB),
			secs(r.BareRead),
			secs(r.StepI),
			secs(r.Total),
			fmt.Sprintf("%.1f", r.RelCost),
		})
	}
	return FormatTable(
		[]string{"", "|S| (MB)", "|R| (MB)", "D (MB)", "Read S + R", "Step I", "Steps I + II", "Rel. Cost"},
		out)
}

// FormatFigure4 renders the utilization trace, downsampled to at most
// maxRows lines.
func FormatFigure4(points []Fig4Point, maxRows int) string {
	if maxRows < 1 {
		maxRows = 1
	}
	stride := len(points)/maxRows + 1
	out := [][]string{}
	for i := 0; i < len(points); i += stride {
		p := points[i]
		out = append(out, []string{
			fmt.Sprintf("%.0f", p.Seconds),
			fmt.Sprintf("%.1f", p.EvenPct),
			fmt.Sprintf("%.1f", p.OddPct),
			fmt.Sprintf("%.1f", p.TotalPct),
		})
	}
	return FormatTable([]string{"Time (s)", "Even iter (%)", "Odd iter (%)", "Total (%)"}, out)
}

// FormatFigure5 renders Experiment 2's two series.
func FormatFigure5(rows []Fig5Row) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		cdt := "infeasible"
		if r.CDTGHOk {
			cdt = fmt.Sprintf("%.0f", r.CDTGH.Seconds())
		}
		out = append(out, []string{
			fmt.Sprintf("%.1f", r.DiskMB),
			cdt,
			fmt.Sprintf("%.0f", r.CTTGH.Seconds()),
		})
	}
	return FormatTable([]string{"Disk (MB)", "CDT-GH (s)", "CTT-GH (s)"}, out)
}

// exp3Series pivots Experiment 3 rows into per-method columns of one
// metric.
func exp3Series(rows []Exp3Row, metric func(Exp3Row) string, title string) string {
	fracs := []float64{}
	seen := map[float64]bool{}
	byKey := map[string]string{}
	methods := []string{}
	mseen := map[string]bool{}
	for _, r := range rows {
		if !seen[r.MemFrac] {
			seen[r.MemFrac] = true
			fracs = append(fracs, r.MemFrac)
		}
		if !mseen[string(r.Method)] {
			mseen[string(r.Method)] = true
			methods = append(methods, string(r.Method))
		}
		byKey[fmt.Sprintf("%s@%v", r.Method, r.MemFrac)] = metric(r)
	}
	sort.Float64s(fracs)

	headers := append([]string{"M/|R|"}, methods...)
	out := [][]string{}
	for _, f := range fracs {
		row := []string{fmt.Sprintf("%.2f", f)}
		for _, m := range methods {
			cell, ok := byKey[fmt.Sprintf("%s@%v", m, f)]
			if !ok {
				cell = "-"
			}
			row = append(row, cell)
		}
		out = append(out, row)
	}
	return title + "\n" + FormatTable(headers, out)
}

// FormatFigure6 renders the disk space requirement series.
func FormatFigure6(rows []Exp3Row) string {
	return exp3Series(rows, func(r Exp3Row) string {
		if !r.Feasible {
			return "infeasible"
		}
		return fmt.Sprintf("%.1f", r.DiskSpaceMB)
	}, "Disk Space Requirement (MB)")
}

// FormatFigure7 renders the disk I/O traffic series.
func FormatFigure7(rows []Exp3Row) string {
	return exp3Series(rows, func(r Exp3Row) string {
		if !r.Feasible {
			return "infeasible"
		}
		return fmt.Sprintf("%.0f", r.DiskIOMB)
	}, "Disk I/O Traffic (MB)")
}

// FormatFigure8 renders the response time series.
func FormatFigure8(rows []Exp3Row) string {
	return exp3Series(rows, func(r Exp3Row) string {
		if !r.Feasible {
			return "infeasible"
		}
		return fmt.Sprintf("%.0f", r.Response.Seconds())
	}, "Response Time (s)")
}

// FormatOverhead renders the relative join overhead series (Figures
// 9, 10 and 11).
func FormatOverhead(rows []Exp3Row, title string) string {
	return exp3Series(rows, func(r Exp3Row) string {
		if !r.Feasible {
			return "infeasible"
		}
		return fmt.Sprintf("%.0f%%", 100*r.Overhead)
	}, title)
}

// FormatAnalytic renders one of Figures 1–3.
func FormatAnalytic(points []AnalyticPoint) string {
	methods := cost.MethodSymbols()
	headers := append([]string{"|R|/M"}, methods...)
	out := [][]string{}
	for _, p := range points {
		row := []string{fmt.Sprintf("%.1f", p.ROverM)}
		for _, m := range methods {
			v := p.Relative[m]
			if math.IsInf(v, 1) {
				row = append(row, "infeasible")
			} else {
				row = append(row, fmt.Sprintf("%.2f", v))
			}
		}
		out = append(out, row)
	}
	return FormatTable(headers, out)
}

// FormatSkew renders the skew experiment: per backend and method, the
// virtual response on uniform keys, on Zipf(0.99) under the uniform
// planner, and on the same Zipf input with skew-aware partitioning,
// plus the planner's win and the plan repair it performed.
func FormatSkew(rows []SkewRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		if !r.Feasible {
			out = append(out, []string{
				r.Backend, string(r.Method), "-", "-", "-", "-", "-",
				"infeasible: " + r.Reason,
			})
			continue
		}
		// Sub-second responses (the file backend's unpaced runs) are
		// wall-clock noise; a percentage of them would be meaningless.
		win := "n/a"
		if r.Zipf >= time.Second && r.ZipfAware >= time.Second {
			win = fmt.Sprintf("%+.1f%%", (1-r.ZipfAware.Seconds()/r.Zipf.Seconds())*100)
		}
		plan := "trivial"
		if r.SkewPartitions > 0 {
			plan = fmt.Sprintf("%d heavy, %d parts", r.HeavyHitters, r.SkewPartitions)
		}
		out = append(out, []string{
			r.Backend, string(r.Method),
			secs(r.Uniform), secs(r.Zipf), secs(r.ZipfAware),
			win, plan,
			fmt.Sprintf("%d matches", r.Matches),
		})
	}
	return FormatTable(
		[]string{"Backend", "Method", "Uniform", "Zipf .99", "Zipf+skew", "Win", "Skew plan", "Output"},
		out,
	)
}
