package obs

import (
	"sort"
	"time"

	"repro/internal/sim"
	"repro/internal/trace"
)

// DeviceBusy is one device's contribution to a phase: merged busy time
// and blocks moved.
type DeviceBusy struct {
	Device string
	Busy   sim.Duration
	Blocks int64
}

// PhaseStat is the critical-path summary of one phase (all top-level
// spans sharing a name, plus their descendants' device events).
type PhaseStat struct {
	// Name is the phase name ("TOTAL" for the whole-run row).
	Name string
	// Count is the number of top-level spans aggregated.
	Count int
	// Wall is the union of the phase's span intervals — elapsed
	// virtual time during which the phase was active somewhere.
	Wall sim.Duration
	// RealWall is the union of the phase's wall-clock span intervals —
	// elapsed real time the phase was active. Zero unless the run was
	// wall-clocked (file backend), when it exposes per-phase real
	// overlap rather than only the per-run total.
	RealWall time.Duration
	// Busy lists per-device merged busy time, sorted by device.
	Busy []DeviceBusy
	// Bottleneck is the device with the most busy time; BottleneckBusy
	// its merged busy time.
	Bottleneck     string
	BottleneckBusy sim.Duration
	// Overlap is the fraction of total device busy time that ran
	// concurrently with another device: (Σ busy − union)/Σ busy.
	// 0 means strictly sequential device use; the paper's concurrent
	// methods push it up.
	Overlap float64
}

// Report is the output of Analyze: a whole-run row plus per-phase
// rows in first-execution order.
type Report struct {
	Total  PhaseStat
	Phases []PhaseStat
}

type interval struct{ s, t sim.Time }

// mergeIntervals sorts and coalesces overlapping intervals.
func mergeIntervals(ivs []interval) []interval {
	if len(ivs) == 0 {
		return nil
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].t < ivs[j].t
	})
	out := ivs[:1]
	for _, v := range ivs[1:] {
		last := &out[len(out)-1]
		if v.s <= last.t {
			if v.t > last.t {
				last.t = v.t
			}
			continue
		}
		out = append(out, v)
	}
	return out
}

func totalDur(ivs []interval) sim.Duration {
	var d sim.Duration
	for _, v := range ivs {
		d += sim.Duration(v.t - v.s)
	}
	return d
}

// statFor summarizes one set of device events plus the wall intervals
// they are judged against.
func statFor(name string, count int, wall []interval, events []trace.Event) PhaseStat {
	st := PhaseStat{Name: name, Count: count, Wall: totalDur(mergeIntervals(wall))}
	perDev := map[string][]interval{}
	blocks := map[string]int64{}
	var all []interval
	for _, e := range events {
		if e.Kind == trace.Mark || e.Device == "-" || e.End <= e.Start {
			continue
		}
		iv := interval{e.Start, e.End}
		perDev[e.Device] = append(perDev[e.Device], iv)
		all = append(all, iv)
		blocks[e.Device] += e.Blocks
	}
	devs := make([]string, 0, len(perDev))
	for d := range perDev {
		devs = append(devs, d)
	}
	sort.Strings(devs)
	var sum sim.Duration
	for _, d := range devs {
		busy := totalDur(mergeIntervals(perDev[d]))
		sum += busy
		st.Busy = append(st.Busy, DeviceBusy{Device: d, Busy: busy, Blocks: blocks[d]})
		if busy > st.BottleneckBusy {
			st.Bottleneck = d
			st.BottleneckBusy = busy
		}
	}
	if sum > 0 {
		union := totalDur(mergeIntervals(all))
		st.Overlap = float64(sum-union) / float64(sum)
	}
	return st
}

// Analyze walks spans and device events and reports, per phase, the
// bottleneck device and the overlap fraction. Phases are top-level
// spans (Parent == 0) grouped by name; a phase owns the device events
// stamped with its spans or any of their descendants. The Total row
// covers every device event against the whole run [0, end].
func Analyze(spans []*Span, events []trace.Event, end sim.Time) *Report {
	r := &Report{Total: statFor("TOTAL", 0, []interval{{0, end}}, events)}

	// Map every span to its top-level ancestor.
	byID := map[int64]*Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	top := map[int64]int64{} // span ID -> top-level ancestor ID
	var rootOf func(id int64) int64
	rootOf = func(id int64) int64 {
		if t, ok := top[id]; ok {
			return t
		}
		s := byID[id]
		if s == nil {
			return 0
		}
		t := s.ID
		if s.Parent != 0 {
			t = rootOf(s.Parent)
		}
		top[id] = t
		return t
	}

	// Group top-level spans by name, in first-open order.
	groupOf := map[int64]int{} // top-level span ID -> group index
	var order []string
	groupIdx := map[string]int{}
	wall := map[int][]interval{}
	realWall := map[int][]interval{} // wall-clock ns, reusing interval
	var realAll []interval
	counts := map[int]int{}
	for _, s := range spans {
		if s.Parent != 0 {
			continue
		}
		gi, ok := groupIdx[s.Name]
		if !ok {
			gi = len(order)
			groupIdx[s.Name] = gi
			order = append(order, s.Name)
		}
		groupOf[s.ID] = gi
		end := s.End
		if end < s.Start {
			end = s.Start
		}
		wall[gi] = append(wall[gi], interval{s.Start, end})
		if s.HasWall() && s.WallEnd >= s.WallStart {
			iv := interval{sim.Time(s.WallStart), sim.Time(s.WallEnd)}
			realWall[gi] = append(realWall[gi], iv)
			realAll = append(realAll, iv)
		}
		counts[gi]++
	}
	r.Total.RealWall = time.Duration(totalDur(mergeIntervals(realAll)))

	byGroup := map[int][]trace.Event{}
	for _, e := range events {
		if e.Span == 0 {
			continue
		}
		gi, ok := groupOf[rootOf(e.Span)]
		if !ok {
			continue
		}
		byGroup[gi] = append(byGroup[gi], e)
	}

	for gi, name := range order {
		st := statFor(name, counts[gi], wall[gi], byGroup[gi])
		st.RealWall = time.Duration(totalDur(mergeIntervals(realWall[gi])))
		r.Phases = append(r.Phases, st)
	}
	return r
}
