package trace

import (
	"strings"
	"testing"
)

// faultedRecorder reproduces a recovery run's event shapes: a fault
// marker (instantaneous), a retry interval overlapping the re-read it
// issues, a phase mark, and an event running past the render window.
func faultedRecorder() *Recorder {
	r := &Recorder{}
	r.Add(Event{Device: "tape:R", Kind: TapeRead, Start: 0, End: secs(40), Blocks: 40})
	r.Add(Event{Device: "tape:R", Kind: Fault, Start: secs(40), End: secs(40), Note: "transient"})
	r.Add(Event{Device: "tape:R", Kind: Retry, Start: secs(40), End: secs(52)})
	r.Add(Event{Device: "tape:R", Kind: TapeRead, Start: secs(48), End: secs(52), Blocks: 4})
	r.Add(Event{Device: "disk0", Kind: DiskWrite, Start: secs(10), End: secs(30), Blocks: 20})
	r.Add(Event{Device: "disk0", Kind: DiskRead, Start: secs(95), End: secs(110), Blocks: 15})
	r.Mark(secs(52), "step I done")
	return r
}

func TestTimelineGolden(t *testing.T) {
	want := "" +
		"disk0  |..wwww.............r|\n" +
		"tape:R |rrrrrrrr~~~.........|\n" +
		"        0               1m40s\n"
	if got := faultedRecorder().Timeline(secs(100), 20); got != want {
		t.Fatalf("timeline:\n%swant:\n%s", got, want)
	}
}

func TestSummaryGolden(t *testing.T) {
	want := "" +
		"disk0    busy   35.0%  disk-read 15s  disk-write 20s\n" +
		"tape:R   busy   52.0%  tape-read 44s  fault 0s  retry 12s\n"
	if got := faultedRecorder().Summary(secs(100)); got != want {
		t.Fatalf("summary:\n%swant:\n%s", got, want)
	}
}

func TestBusyTimeMergesOverlap(t *testing.T) {
	r := faultedRecorder()
	// tape:R: read 0-40s, retry 40-52s, re-read 48-52s. Naive summing
	// gives 56s; the merged interval [0, 52] is the truth.
	if got := r.BusyTime("tape:R"); got.Seconds() != 52 {
		t.Fatalf("tape:R busy = %v, want 52s", got)
	}
	// Identical duplicated intervals collapse entirely.
	d := &Recorder{}
	d.Add(Event{Device: "d", Kind: DiskRead, Start: 0, End: secs(10)})
	d.Add(Event{Device: "d", Kind: DiskRead, Start: 0, End: secs(10)})
	if got := d.BusyTime("d"); got.Seconds() != 10 {
		t.Fatalf("duplicate busy = %v, want 10s", got)
	}
	// An interval containing another contributes only its own length.
	n := &Recorder{}
	n.Add(Event{Device: "d", Kind: Retry, Start: 0, End: secs(20)})
	n.Add(Event{Device: "d", Kind: DiskRead, Start: secs(5), End: secs(10)})
	if got := n.BusyTime("d"); got.Seconds() != 20 {
		t.Fatalf("nested busy = %v, want 20s", got)
	}
}

func TestTimelineInstantAndOverrun(t *testing.T) {
	// A zero-duration event renders a one-cell glyph, and its full-cell
	// weight beats partial occupants of the same cell.
	r := &Recorder{}
	r.Add(Event{Device: "d", Kind: DiskRead, Start: 0, End: secs(2)})
	r.Add(Event{Device: "d", Kind: Fault, Start: secs(3), End: secs(3)})
	tl := r.Timeline(secs(10), 2) // cells of 5s: read covers 2s of cell 0
	if !strings.Contains(tl, "|!.|") {
		t.Fatalf("instant fault should win its cell:\n%s", tl)
	}
	// An event entirely past end clamps into the last cell instead of
	// being dropped.
	o := &Recorder{}
	o.Add(Event{Device: "d", Kind: DiskWrite, Start: 0, End: secs(1)})
	o.Add(Event{Device: "d", Kind: DiskRead, Start: secs(12), End: secs(15)})
	tl = o.Timeline(secs(10), 2)
	if !strings.Contains(tl, "|wr|") {
		t.Fatalf("past-end event should clamp into last cell:\n%s", tl)
	}
}
