// Package faultfile wraps OS file handles so seeded fault schedules
// can strike at the syscall layer: error returns, short (torn) writes,
// wall-clock stalls, and bit-flips of the bytes crossing the
// read/write boundary. It is the file backend's counterpart to the
// device-model injection inside internal/tape and internal/disk — the
// same -faults spec drives both levels.
//
// Decisions are not made here. The device layer consults the injector
// at plan time, while it holds the simulation's control token, and
// arms the wrapper with the verdict; the wrapper applies armed
// decisions in FIFO order as the device worker executes the planned
// syscalls. That split keeps the fault schedule's state
// single-threaded while the faulted syscalls themselves run off-token
// on worker goroutines — a small mutex hands the armed queue across.
package faultfile

import (
	"io"
	"sync"
	"time"

	"repro/internal/fault"
)

// OSFile is the slice of *os.File the wrapper relies on.
type OSFile interface {
	io.ReaderAt
	io.WriterAt
	Sync() error
	Close() error
}

// File wraps an OSFile with deterministic, pre-armed fault
// application. The zero-armed wrapper is a transparent passthrough.
type File struct {
	inner OSFile

	mu    sync.Mutex
	armed []fault.OSDecision
}

// Wrap returns a fault-capable wrapper around inner.
func Wrap(inner OSFile) *File { return &File{inner: inner} }

// Arm queues one decision to be applied to the next positioned read or
// write. Call it under the control token, before submitting the
// operation it should strike; per-file submission order then matches
// application order.
func (f *File) Arm(dec fault.OSDecision) {
	if dec.Zero() {
		return
	}
	f.mu.Lock()
	f.armed = append(f.armed, dec)
	f.mu.Unlock()
}

// take pops the next armed decision, if any.
func (f *File) take() (fault.OSDecision, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.armed) == 0 {
		return fault.OSDecision{}, false
	}
	dec := f.armed[0]
	f.armed = f.armed[1:]
	return dec, true
}

// ReadAt implements io.ReaderAt, applying at most one armed decision:
// a wall-clock stall before the syscall, an error instead of it, or a
// bit-flip of the delivered bytes.
func (f *File) ReadAt(p []byte, off int64) (int, error) {
	dec, ok := f.take()
	if !ok {
		return f.inner.ReadAt(p, off)
	}
	if dec.Stall > 0 {
		time.Sleep(dec.Stall)
	}
	if dec.Err != nil {
		return 0, dec.Err
	}
	n, err := f.inner.ReadAt(p, off)
	if dec.Flip && n > 0 {
		p[n/2] ^= 0x01
	}
	return n, err
}

// WriteAt implements io.WriterAt, applying at most one armed decision:
// a wall-clock stall, an error return, a torn write that stores only a
// prefix yet reports full success, or a bit-flip of the stored bytes.
func (f *File) WriteAt(p []byte, off int64) (int, error) {
	dec, ok := f.take()
	if !ok {
		return f.inner.WriteAt(p, off)
	}
	if dec.Stall > 0 {
		time.Sleep(dec.Stall)
	}
	if dec.Err != nil {
		return 0, dec.Err
	}
	if dec.Torn {
		// Store a prefix, lie about the rest: the canonical torn write.
		if _, err := f.inner.WriteAt(p[:len(p)/2], off); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	if dec.Flip && len(p) > 0 {
		bad := append([]byte(nil), p...)
		bad[len(bad)/2] ^= 0x01
		n, err := f.inner.WriteAt(bad, off)
		return n, err
	}
	return f.inner.WriteAt(p, off)
}

// Sync passes through to the inner file.
func (f *File) Sync() error { return f.inner.Sync() }

// Close passes through to the inner file.
func (f *File) Close() error { return f.inner.Close() }
