// Relational reporting over tape archives: the query layer on top of
// the tertiary join methods. A support organization keeps its ticket
// archive on tape and joins it with the (also tape-resident) account
// table to report high-priority tickets of enterprise accounts — a
// WHERE and a projection evaluated on the join's output stream, with
// the join method chosen by the paper's cost model.
//
//	go run ./examples/report
package main

import (
	"fmt"
	"log"

	tapejoin "repro"
)

func main() {
	sys, err := tapejoin.NewSystem(tapejoin.Config{
		MemoryMB: 8,
		DiskMB:   60,
	})
	if err != nil {
		log.Fatal(err)
	}
	tapeA, _ := sys.NewTape("accounts-tape", 256)
	tapeT, _ := sys.NewTape("tickets-tape", 1024)

	accounts, err := sys.CreateTable(tapeA, tapejoin.TableSpec{
		Name: "accounts", SizeMB: 20, KeySpace: 50_000, Seed: 31,
		Columns: []tapejoin.Column{
			{Name: "id", Type: tapejoin.Int64Col},
			{Name: "plan", Type: tapejoin.StringCol},
			{Name: "seats", Type: tapejoin.Int64Col},
		},
		Rows: func(ordinal int64, key uint64) []tapejoin.Value {
			plan := "starter"
			if key%5 == 0 {
				plan = "enterprise"
			}
			return []tapejoin.Value{plan, int64(5 + key%200)}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	tickets, err := sys.CreateTable(tapeT, tapejoin.TableSpec{
		Name: "tickets", SizeMB: 400, KeySpace: 50_000, Seed: 32,
		Columns: []tapejoin.Column{
			{Name: "account", Type: tapejoin.Int64Col},
			{Name: "priority", Type: tapejoin.Int64Col},
			{Name: "hours_open", Type: tapejoin.FloatCol},
		},
		Rows: func(ordinal int64, key uint64) []tapejoin.Value {
			return []tapejoin.Value{ordinal % 4, float64(ordinal%300) / 2}
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// SELECT r.id, r.seats, s.hours_open
	// FROM accounts r JOIN tickets s ON r.id = s.account
	// WHERE r.plan = 'enterprise' AND s.priority >= 3 AND s.hours_open > 100
	res, err := sys.RunQuery(tapejoin.QuerySpec{
		R: accounts, S: tickets,
		Where: tapejoin.And(
			tapejoin.Cmp(tapejoin.Eq, tapejoin.RCol("plan"), tapejoin.Lit("enterprise")),
			tapejoin.Cmp(tapejoin.Ge, tapejoin.SCol("priority"), tapejoin.Lit(int64(3))),
			tapejoin.Cmp(tapejoin.Gt, tapejoin.SCol("hours_open"), tapejoin.Lit(100.0)),
		),
		Select: []tapejoin.Expr{
			tapejoin.RCol("id"), tapejoin.RCol("seats"), tapejoin.SCol("hours_open"),
		},
		Limit: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("planner chose %s (D=%g MB vs |R|=%d MB)\n",
		res.Method, sys.Config().DiskMB, accounts.SizeMB())
	fmt.Printf("joined %d pairs, %d pass the WHERE, in %v of simulated time\n",
		res.JoinMatches, res.Count, res.Response.Round(0))
	fmt.Println("first rows (account, seats, hours_open):")
	for _, row := range res.Rows {
		fmt.Printf("  %6d  %4d  %6.1f\n", row[0], row[1], row[2])
	}
}
