package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

func exportFixture() ([]*Span, []trace.Event) {
	spans := []*Span{
		{ID: 1, Name: "stage-S", Proc: "join:X", Start: 0, End: secs(10), Attrs: []Attr{A("off", "0")}},
		{ID: 2, Parent: 1, Name: "retry-backoff", Proc: "join:X", Start: secs(4), End: secs(6)},
	}
	events := []trace.Event{
		{Device: "tape:S", Kind: trace.TapeRead, Start: 0, End: secs(10), Blocks: 160, Span: 1},
		{Device: "tape:S", Kind: trace.Fault, Start: secs(4), End: secs(4), Span: 2, Note: "transient"},
		{Device: "disk0", Kind: trace.DiskWrite, Start: secs(2), End: secs(9), Blocks: 120, Span: 1},
		{Device: "-", Kind: trace.Mark, Start: secs(10), End: secs(10), Note: "step I done"},
	}
	return spans, events
}

func TestChromeTraceRoundTrip(t *testing.T) {
	spans, events := exportFixture()
	data, err := ChromeTrace(spans, events)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckChromeTrace(data); err != nil {
		t.Fatalf("exporter output fails its own checker: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	// Tracks: disk0, tape:S, proc:join:X, marks -> 4 metadata events.
	meta := map[string]int{}
	var slices, instants int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			meta[e.Args["name"].(string)] = e.Tid
		case "X":
			slices++
			if e.Dur < 0 {
				t.Errorf("negative dur on %s", e.Name)
			}
		case "i":
			instants++
		}
	}
	for _, want := range []string{"disk0", "tape:S", "proc:join:X", "marks"} {
		if _, ok := meta[want]; !ok {
			t.Errorf("missing track %q (have %v)", want, meta)
		}
	}
	if meta["disk0"] != 1 || meta["tape:S"] != 2 {
		t.Errorf("devices should get the first sorted tids: %v", meta)
	}
	// 2 span slices + 2 device slices; fault and mark are instants.
	if slices != 4 || instants != 2 {
		t.Errorf("slices = %d, instants = %d", slices, instants)
	}
}

func TestCheckChromeTraceRejectsBadDocs(t *testing.T) {
	for name, doc := range map[string]string{
		"garbage":     "not json",
		"empty":       `{"traceEvents": []}`,
		"no name":     `{"traceEvents": [{"ph":"X","ts":0,"dur":1,"pid":1,"tid":1}]}`,
		"no tid":      `{"traceEvents": [{"name":"a","ph":"X","ts":0,"dur":1,"pid":1}]}`,
		"bad ph":      `{"traceEvents": [{"name":"a","ph":"Z","ts":0,"pid":1,"tid":1}]}`,
		"neg dur":     `{"traceEvents": [{"name":"a","ph":"X","ts":0,"dur":-1,"pid":1,"tid":1}]}`,
		"no slices":   `{"traceEvents": [{"name":"a","ph":"i","ts":0,"pid":1,"tid":1}]}`,
		"unnamed tid": `{"traceEvents": [{"name":"a","ph":"X","ts":0,"dur":1,"pid":1,"tid":9}]}`,
	} {
		if CheckChromeTrace([]byte(doc)) == nil {
			t.Errorf("%s: checker accepted invalid trace", name)
		}
	}
}

func TestWriteJSONL(t *testing.T) {
	spans, events := exportFixture()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, spans, events); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	var lines []map[string]any
	for sc.Scan() {
		var m map[string]any
		if err := json.Unmarshal(sc.Bytes(), &m); err != nil {
			t.Fatalf("invalid JSONL line %q: %v", sc.Text(), err)
		}
		lines = append(lines, m)
	}
	if len(lines) != len(spans)+len(events) {
		t.Fatalf("got %d lines", len(lines))
	}
	if lines[0]["type"] != "span" || lines[0]["name"] != "stage-S" || lines[0]["end_s"] != 10.0 {
		t.Errorf("span line = %v", lines[0])
	}
	if attrs := lines[0]["attrs"].([]any); attrs[0].(map[string]any)["key"] != "off" {
		t.Errorf("attrs line = %v", lines[0]["attrs"])
	}
	if lines[2]["type"] != "event" || lines[2]["kind"] != "tape-read" || lines[2]["blocks"] != 160.0 {
		t.Errorf("event line = %v", lines[2])
	}
	if !strings.Contains(lines[5]["note"].(string), "step I") {
		t.Errorf("mark line = %v", lines[5])
	}
}
