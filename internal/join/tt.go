package join

import (
	"fmt"

	"repro/internal/hashutil"
	"repro/internal/sim"
)

// planTT plans TT-GH's buckets: the same B partitions both relations,
// so a bucket of either side must fit the disk assembly area. S is the
// larger side, so it sets the bound: bucket_R <= R/S * assemblable(D).
func planTT(spec Spec, res Resources) (hashutil.Plan, error) {
	bound := assemblableBucket(res.DiskBlocks)
	// Scale the R-side bucket bound so the corresponding S bucket
	// (about |S|/|R| times larger) also fits.
	r, s := spec.R.Region.N, spec.S.Region.N
	rBound := bound * r / s
	if rBound < 1 {
		rBound = 1
	}
	plan, err := hashutil.PlanBucketsBounded(r, res.MemoryBlocks, rBound)
	if err != nil {
		return plan, fmt.Errorf("%w: %v", ErrNeedMemory, err)
	}
	return plan, nil
}

// TTGH is Tape–Tape Grace Hash Join (Section 5.2.2): fully sequential.
// Step I hashes R onto the S tape's scratch space (the other tape is
// the target so no seeks alternate between source and destination on
// one cartridge), then hashes S onto the R tape the same way. Step II
// reads each R bucket into memory and scans the corresponding S
// bucket. Trades the largest tape space requirement (T_R = |S|,
// T_S = |R|) for the smallest disk requirement.
type TTGH struct{}

// Name implements Method.
func (TTGH) Name() string { return "Tape-Tape Grace Hash Join" }

// Symbol implements Method.
func (TTGH) Symbol() string { return "TT-GH" }

// Check implements Method: M >= sqrt(|R|); disk must assemble at least
// one bucket of either relation (Table 2 says "any" disk space under
// the idealization that buckets can be fragmented; we assemble buckets
// contiguously, which needs a bucket's worth); both tapes need scratch
// space for the other relation's hashed copy.
func (TTGH) Check(spec Spec, res Resources) error {
	plan, err := planTT(spec, res)
	if err != nil {
		return err
	}
	if est := estBucketBlocks(spec.S.Region.N, plan.B); res.DiskBlocks < 2*est {
		return fmt.Errorf("%w: D=%d cannot assemble one %d-block S bucket with headroom", ErrNeedDisk, res.DiskBlocks, est)
	}
	if free := spec.S.Media.Free(); free < spec.R.Region.N+int64(plan.B) {
		return fmt.Errorf("%w: S tape has %d free, hashed R needs ~%d",
			ErrNeedTapeScratch, free, spec.R.Region.N+int64(plan.B))
	}
	if free := spec.R.Media.Free(); free < spec.S.Region.N+int64(plan.B) {
		return fmt.Errorf("%w: R tape has %d free, hashed S needs ~%d",
			ErrNeedTapeScratch, free, spec.S.Region.N+int64(plan.B))
	}
	return nil
}

func (TTGH) run(e *env, p *sim.Proc) error {
	plan, err := planTT(e.spec, e.res)
	if err != nil {
		return err
	}

	// Step I, part 1: hash R onto the S tape, sketching for skew when
	// enabled.
	var skp *hashutil.SkewPlan
	rRegions, err := hashRelationToTape(e, p, e.driveR, e.spec.R.Region,
		e.spec.R.TuplesPerBlock, e.spec.R.Tag, plan, e.driveS, false, e.filterR(), &e.stats.RScans, &skp, true)
	if err != nil {
		return err
	}
	// Step I, part 2: hash S onto the R tape using the same buckets —
	// and the same skew refinement, so partition i of each side holds
	// the same keys.
	sScans := 0
	sRegions, err := hashRelationToTape(e, p, e.driveS, e.spec.S.Region,
		e.spec.S.TuplesPerBlock, e.spec.S.Tag, plan, e.driveR, false, e.filterS(), &sScans, &skp, false)
	if err != nil {
		return err
	}
	e.markStepI(p)

	scanBuf := scanBufFor(plan, e.res.MemoryBlocks)
	maxLoad := e.res.MemoryBlocks - scanBuf
	nparts := plan.B
	if skp != nil {
		nparts = skp.NParts
	}

	// Step II: join partition pairs; R partitions now live on the S
	// tape and S partitions on the R tape, both in spool order. Each
	// pair is one restartable unit with staged output — both inputs
	// are on tape, so any retry simply re-reads them.
	for b := 0; b < nparts; b++ {
		b := b
		err := e.runUnit(p, fmt.Sprintf("bucket %d", b), func(up *sim.Proc) error {
			return e.staged(up, func() error {
				r := tapeBucket{drive: e.driveS, region: rRegions[b]}
				s := tapeBucket{drive: e.driveR, region: sRegions[b]}
				return joinBucketPair(e, up, r, s, maxLoad, scanBuf)
			})
		})
		if err != nil {
			return err
		}
		e.stats.Iterations++
	}
	e.stats.RScans++ // Step II reads the hashed R once in full
	return nil
}
