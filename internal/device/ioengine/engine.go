// Package ioengine runs real OS I/O off the simulation's control
// token: every device owns a worker goroutine with a bounded request
// queue, a proc submits an operation and yields the token through
// sim.Proc.StartIO/Await, and independent devices' transfers overlap
// in wall-clock time while the kernel keeps virtual time deterministic.
//
// The engine also keeps the honest side of the books: per-device
// wall-clock busy intervals (merged into an overlap fraction that
// mirrors the virtual-time metric in internal/obs) and a per-device
// queue-depth gauge. All gauge updates run on token-holding
// goroutines; interval recording is the only mutex-guarded state
// touched by workers.
package ioengine

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultQueueDepth bounds each worker's request queue. Submissions
// beyond it block the submitting goroutine in wall-clock time until
// the worker drains; with the submit-then-await discipline every
// device op uses, depth is bounded by the number of live procs anyway.
const DefaultQueueDepth = 64

// ErrClosed is returned for operations submitted to a closed worker.
var ErrClosed = errors.New("ioengine: worker closed")

// Engine owns the device workers of one backend instance and
// aggregates their wall-clock activity.
type Engine struct {
	depth int

	mu      sync.Mutex
	start   time.Time
	started bool
	busy    map[string][]wallInterval // device name -> closed busy intervals
}

// wallInterval is one worker-side busy window, relative to the
// engine's first submission.
type wallInterval struct{ s, t time.Duration }

// New returns an engine whose workers queue up to depth requests
// (DefaultQueueDepth when depth <= 0).
func New(depth int) *Engine {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &Engine{depth: depth, busy: map[string][]wallInterval{}}
}

// now returns wall time relative to the engine's epoch, starting the
// epoch on first use.
func (e *Engine) now() time.Duration {
	e.mu.Lock()
	if !e.started {
		e.start, e.started = time.Now(), true
	}
	d := time.Since(e.start)
	e.mu.Unlock()
	return d
}

func (e *Engine) record(device string, s, t time.Duration) {
	e.mu.Lock()
	e.busy[device] = append(e.busy[device], wallInterval{s, t})
	e.mu.Unlock()
}

// request is one queued operation.
type request struct {
	c  *sim.Completion
	op func() error
}

// Worker is one device's I/O goroutine. Obtain it from Engine.Worker,
// submit through Do (or Submit/Await for split-phase use), and Close
// it when the device closes.
type Worker struct {
	e    *Engine
	name string
	reqs chan request
	done chan struct{}

	// Token-guarded (only ever touched while the submitting proc holds
	// the simulation's control token, which orders the accesses).
	queued int
	closed bool
	gauge  *obs.Gauge
}

// Worker creates a worker goroutine for the named device. Names are
// labels, not keys: a second worker with the same name is a distinct
// queue whose wall intervals merge into the same per-device series.
func (e *Engine) Worker(name string) *Worker {
	w := &Worker{e: e, name: name, reqs: make(chan request, e.depth), done: make(chan struct{})}
	go w.run()
	return w
}

func (w *Worker) run() {
	defer close(w.done)
	for req := range w.reqs {
		t0 := w.e.now()
		err := req.op()
		t1 := w.e.now()
		w.e.record(w.name, t0, t1)
		req.c.Post(sim.Duration(t1-t0), err)
	}
}

// Name returns the worker's device label.
func (w *Worker) Name() string { return w.name }

// SetMetrics registers the worker's queue-depth gauge in reg (nil
// detaches). A nil worker (synchronous backend) is a no-op.
func (w *Worker) SetMetrics(reg *obs.Registry) {
	if w == nil {
		return
	}
	if reg == nil {
		w.gauge = nil
		return
	}
	w.gauge = reg.Gauge("iodev_queue_depth",
		"Requests queued or in flight on a device I/O worker.", obs.A("device", w.name))
}

// Submit enqueues op on the worker and returns its completion. The
// caller must hold the control token and must eventually Await the
// result through the same worker's Await (which maintains the queue
// gauge). Submission blocks in wall-clock time when the queue is full.
func (w *Worker) Submit(p *sim.Proc, op func() error) *sim.Completion {
	c := p.StartIO(w.name)
	if w.closed {
		// Fail through the normal completion path so Await semantics
		// hold for the caller.
		c.Post(0, ErrClosed)
		return c
	}
	w.queued++
	w.gauge.Set(float64(w.queued))
	w.reqs <- request{c: c, op: op}
	return c
}

// Await reaps a completion submitted on this worker, yielding the
// token until the operation is done and its virtual time charged.
func (w *Worker) Await(p *sim.Proc, c *sim.Completion) (sim.Duration, error) {
	d, err := p.Await(c)
	if !errors.Is(err, ErrClosed) {
		w.queued--
		w.gauge.Set(float64(w.queued))
	}
	return d, err
}

// Do submits op and awaits it: the calling proc yields the control
// token while the worker performs the operation, so other procs (and
// other devices' workers) run meanwhile. Returns the measured
// wall-clock duration, which Await has already charged to virtual
// time.
func (w *Worker) Do(p *sim.Proc, op func() error) (sim.Duration, error) {
	return w.Await(p, w.Submit(p, op))
}

// Close stops the worker after draining queued requests and waits for
// it to exit. Safe to call twice and on a nil worker. The caller must
// ensure (by the submit-then-await discipline) that no submission
// races the close.
func (w *Worker) Close() {
	if w == nil || w.closed {
		return
	}
	w.closed = true
	close(w.reqs)
	<-w.done
}

// DeviceWall is one device's total wall-clock busy time.
type DeviceWall struct {
	Device string
	Busy   time.Duration
}

// WallStats summarizes the engine's real-time device activity.
type WallStats struct {
	// PerDevice lists merged busy time per device, sorted by name.
	PerDevice []DeviceWall
	// Busy is the sum over devices of merged busy time.
	Busy time.Duration
	// Union is the wall time during which at least one device was busy.
	Union time.Duration
}

// Overlap is the fraction of device busy time that ran concurrently
// with another device: (Busy − Union) / Busy. Zero when devices took
// strict turns — which is exactly what the pre-async file backend
// measured — approaching 1 as transfers fully overlap.
func (s WallStats) Overlap() float64 {
	if s.Busy <= 0 {
		return 0
	}
	return float64(s.Busy-s.Union) / float64(s.Busy)
}

// WallStats snapshots the engine's wall-clock accounting. Intended for
// after-run reporting; it is safe to call concurrently with workers.
func (e *Engine) WallStats() WallStats {
	e.mu.Lock()
	perDev := make(map[string][]wallInterval, len(e.busy))
	var all []wallInterval
	for dev, ivs := range e.busy {
		perDev[dev] = append([]wallInterval(nil), ivs...)
		all = append(all, ivs...)
	}
	e.mu.Unlock()

	var out WallStats
	names := make([]string, 0, len(perDev))
	for dev := range perDev {
		names = append(names, dev)
	}
	sort.Strings(names)
	for _, dev := range names {
		busy := mergedTotal(perDev[dev])
		out.PerDevice = append(out.PerDevice, DeviceWall{Device: dev, Busy: busy})
		out.Busy += busy
	}
	out.Union = mergedTotal(all)
	return out
}

// PublishMetrics exports the wall-clock stats into reg as gauges, one
// busy-seconds series per device plus the overlap fraction.
func (e *Engine) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := e.WallStats()
	for _, d := range st.PerDevice {
		reg.Gauge("iodev_wall_busy_seconds",
			"Wall-clock time the device's worker spent in OS I/O.",
			obs.A("device", d.Device)).Set(d.Busy.Seconds())
	}
	reg.Gauge("iodev_wall_overlap_fraction",
		"Fraction of wall-clock device busy time overlapped across devices.").Set(st.Overlap())
}

// mergedTotal sorts, coalesces and sums a set of intervals.
func mergedTotal(ivs []wallInterval) time.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].t < ivs[j].t
	})
	total := time.Duration(0)
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.s <= cur.t {
			if v.t > cur.t {
				cur.t = v.t
			}
			continue
		}
		total += cur.t - cur.s
		cur = v
	}
	return total + (cur.t - cur.s)
}
