// Package ioengine runs real OS I/O off the simulation's control
// token: every device owns a worker goroutine with a bounded request
// queue, a proc submits an operation and yields the token through
// sim.Proc.StartIO/Await, and independent devices' transfers overlap
// in wall-clock time while the kernel keeps virtual time deterministic.
//
// The engine also keeps the honest side of the books: per-device
// wall-clock busy intervals (merged into an overlap fraction that
// mirrors the virtual-time metric in internal/obs) and a per-device
// queue-depth gauge. All gauge updates run on token-holding
// goroutines; interval recording is the only mutex-guarded state
// touched by workers.
package ioengine

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/sim"
)

// DefaultQueueDepth bounds each worker's request queue. Submissions
// beyond it block the submitting goroutine in wall-clock time until
// the worker drains; with the submit-then-await discipline every
// device op uses, depth is bounded by the number of live procs anyway.
const DefaultQueueDepth = 64

// ErrClosed is returned for operations submitted to a closed worker.
var ErrClosed = errors.New("ioengine: worker closed")

// ErrCancelled is returned for queued operations aborted by Cancel.
// Unlike ErrTimeout it carries no health consequence: the device is
// fine, the consumer just stopped wanting the work.
var ErrCancelled = errors.New("ioengine: op cancelled")

// Engine owns the device workers of one backend instance and
// aggregates their wall-clock activity.
type Engine struct {
	depth  int
	policy Policy
	flight *obs.FlightRecorder

	mu      sync.Mutex
	start   time.Time
	started bool
	busy    map[string][]wallInterval // device name -> closed busy intervals
	workers []*Worker                 // in creation order; same-name later wins
}

// wallInterval is one worker-side busy window, relative to the
// engine's first submission.
type wallInterval struct{ s, t time.Duration }

// New returns an engine whose workers queue up to depth requests
// (DefaultQueueDepth when depth <= 0), with the default fault policy
// (no deadline, device-layer retries enabled).
func New(depth int) *Engine {
	if depth <= 0 {
		depth = DefaultQueueDepth
	}
	return &Engine{depth: depth, policy: Policy{}.withDefaults(), busy: map[string][]wallInterval{}}
}

// SetPolicy replaces the engine's fault policy. Call before creating
// workers; workers read the policy without locking.
func (e *Engine) SetPolicy(p Policy) { e.policy = p.withDefaults() }

// SetFlight attaches a flight recorder: workers record timeouts,
// health transitions and device-layer retries into it. Call before
// creating workers; like the policy, workers read it without locking.
// A nil recorder (the default) records nothing.
func (e *Engine) SetFlight(f *obs.FlightRecorder) { e.flight = f }

// now returns wall time relative to the engine's epoch, starting the
// epoch on first use.
func (e *Engine) now() time.Duration {
	e.mu.Lock()
	if !e.started {
		e.start, e.started = time.Now(), true
	}
	d := time.Since(e.start)
	e.mu.Unlock()
	return d
}

func (e *Engine) record(device string, s, t time.Duration) {
	e.mu.Lock()
	e.busy[device] = append(e.busy[device], wallInterval{s, t})
	e.mu.Unlock()
}

// request is one queued operation. gen stamps the cancel generation at
// submission; the worker skips requests from generations that have
// since been cancelled.
type request struct {
	c   *sim.Completion
	op  func() error
	gen int64
}

// Worker is one device's I/O goroutine. Obtain it from Engine.Worker,
// submit through Do (or Submit/Await for split-phase use), and Close
// it when the device closes.
type Worker struct {
	e    *Engine
	name string
	reqs chan request
	done chan struct{}

	// Health state: written only by the worker goroutine, read from
	// token-holding goroutines, so it lives in atomics. Metrics are
	// synced from these on the token side (the obs registry is
	// single-threaded).
	state    atomic.Int32 // Health
	consec   atomic.Int64 // consecutive deadline misses
	timeouts atomic.Int64 // total deadline misses

	// retries counts device-layer retries performed by Do. Written on
	// the token side but read by health snapshots from scrape
	// goroutines, so it is atomic.
	retries atomic.Int64

	// cancelGen is the cancel generation: Cancel bumps it, and the
	// worker aborts queued requests stamped with an older generation
	// without executing them. cancelCause holds the latest cause.
	cancelGen   atomic.Int64
	cancelCause atomic.Pointer[error]
	// cancelled counts operations aborted by Cancel, for tests and
	// leak accounting.
	cancelled atomic.Int64

	// Token-guarded (only ever touched while the submitting proc holds
	// the simulation's control token, which orders the accesses).
	queued      int
	closed      bool
	timeoutsPub int64 // timeouts already pushed to the counter
	rng         *rand.Rand
	gauge       *obs.Gauge
	healthGauge *obs.Gauge
	timeoutCtr  *obs.Counter
	retryCtr    *obs.Counter
}

// Worker creates a worker goroutine for the named device. Names are
// labels, not keys: a second worker with the same name is a distinct
// queue whose wall intervals merge into the same per-device series —
// and a fresh worker starts Healthy, which is how replacement devices
// built after a trip escape their predecessor's breaker.
func (e *Engine) Worker(name string) *Worker {
	h := fnv.New64a()
	h.Write([]byte(name))
	w := &Worker{e: e, name: name, reqs: make(chan request, e.depth), done: make(chan struct{}),
		rng: rand.New(rand.NewSource(int64(h.Sum64())))}
	e.mu.Lock()
	e.workers = append(e.workers, w)
	e.mu.Unlock()
	go w.run()
	return w
}

// DeviceHealth is one worker's health snapshot, for live /health
// reporting.
type DeviceHealth struct {
	Device   string
	State    Health
	Timeouts int64
	Retries  int64
}

// DeviceHealths snapshots every device's current health, sorted by
// name. When a device was replaced after a breaker trip (a second
// worker under the same name), the newest worker's state wins — it is
// the device currently serving traffic. Safe from any goroutine.
func (e *Engine) DeviceHealths() []DeviceHealth {
	e.mu.Lock()
	workers := append([]*Worker(nil), e.workers...)
	e.mu.Unlock()
	byName := map[string]DeviceHealth{}
	var order []string
	for _, w := range workers {
		if _, ok := byName[w.name]; !ok {
			order = append(order, w.name)
		}
		byName[w.name] = DeviceHealth{
			Device: w.name, State: w.Health(),
			Timeouts: w.timeouts.Load(), Retries: w.retries.Load(),
		}
	}
	sort.Strings(order)
	out := make([]DeviceHealth, 0, len(order))
	for _, n := range order {
		out = append(out, byName[n])
	}
	return out
}

func (w *Worker) run() {
	defer close(w.done)
	for req := range w.reqs {
		if req.gen < w.cancelGen.Load() {
			// The request was queued before a Cancel: abort it without
			// touching the device. Health state is untouched — the
			// device did nothing wrong — and later-generation requests
			// are served normally, so the worker stays reusable.
			w.cancelled.Add(1)
			req.c.Post(0, w.cancelErr())
			continue
		}
		if Health(w.state.Load()) == Failed {
			// Breaker open: fail fast without touching the device (a
			// timed-out zombie op may still own its buffers).
			req.c.Post(0, fmt.Errorf("%s: %w", w.name, ErrDeviceFailed))
			continue
		}
		w.execute(req)
	}
}

// Cancel aborts every operation queued on the worker at the time of
// the call: each completes with ErrCancelled (wrapping cause, when
// non-nil) without reaching the device. The in-flight operation, if
// any, runs to completion. Cancellation never touches the health state
// machine or the breaker, and the worker keeps serving operations
// submitted after the call. Safe from any goroutine; a nil worker is a
// no-op.
func (w *Worker) Cancel(cause error) {
	if w == nil {
		return
	}
	if cause != nil {
		w.cancelCause.Store(&cause)
	}
	w.cancelGen.Add(1)
}

// Cancelled returns the number of queued operations aborted by Cancel.
func (w *Worker) Cancelled() int64 {
	if w == nil {
		return 0
	}
	return w.cancelled.Load()
}

// cancelErr builds the typed abort error for one cancelled request.
func (w *Worker) cancelErr() error {
	if p := w.cancelCause.Load(); p != nil {
		return fmt.Errorf("%s: %w: %w", w.name, ErrCancelled, *p)
	}
	return fmt.Errorf("%s: %w", w.name, ErrCancelled)
}

// CancelAll cancels the queued operations of every worker the engine
// has created (see Worker.Cancel). Safe from any goroutine.
func (e *Engine) CancelAll(cause error) {
	e.mu.Lock()
	workers := append([]*Worker(nil), e.workers...)
	e.mu.Unlock()
	for _, w := range workers {
		w.Cancel(cause)
	}
}

// Name returns the worker's device label.
func (w *Worker) Name() string { return w.name }

// Health returns the worker's current health state. Safe from any
// goroutine.
func (w *Worker) Health() Health {
	if w == nil {
		return Healthy
	}
	return Health(w.state.Load())
}

// Timeouts returns the number of operations that missed the deadline.
func (w *Worker) Timeouts() int64 {
	if w == nil {
		return 0
	}
	return w.timeouts.Load()
}

// Retries returns the number of device-layer retries Do performed.
func (w *Worker) Retries() int64 {
	if w == nil {
		return 0
	}
	return w.retries.Load()
}

// SetMetrics registers the worker's gauges and counters in reg (nil
// detaches): queue depth, health state, deadline misses, and
// device-layer retries. A nil worker (synchronous backend) is a no-op.
func (w *Worker) SetMetrics(reg *obs.Registry) {
	if w == nil {
		return
	}
	if reg == nil {
		w.gauge, w.healthGauge, w.timeoutCtr, w.retryCtr = nil, nil, nil, nil
		return
	}
	l := obs.A("device", w.name)
	w.gauge = reg.Gauge("iodev_queue_depth",
		"Requests queued or in flight on a device I/O worker.", l)
	w.healthGauge = reg.Gauge("iodev_health",
		"Device worker health: 0 healthy, 1 degraded, 2 failed.", l)
	w.timeoutCtr = reg.Counter("iodev_timeouts_total",
		"Operations that missed the per-op deadline.", l)
	w.retryCtr = reg.Counter("iodev_op_retries_total",
		"Device-layer retries after timeouts or transient errors.", l)
}

// syncMetrics publishes worker-side health state into the registry.
// Must run on a token-holding goroutine.
func (w *Worker) syncMetrics() {
	w.healthGauge.Set(float64(w.state.Load()))
	if t := w.timeouts.Load(); t > w.timeoutsPub {
		w.timeoutCtr.Add(float64(t - w.timeoutsPub))
		w.timeoutsPub = t
	}
}

// Submit enqueues op on the worker and returns its completion. The
// caller must hold the control token and must eventually Await the
// result through the same worker's Await (which maintains the queue
// gauge). Submission blocks in wall-clock time when the queue is full.
// On a closed worker or an open breaker the completion fails
// immediately with ErrClosed / ErrDeviceFailed through the normal
// completion path, so Await semantics hold for the caller.
func (w *Worker) Submit(p *sim.Proc, op func() error) *sim.Completion {
	c := p.StartIO(w.name)
	if w.closed {
		c.Post(0, notEnqueued{ErrClosed})
		return c
	}
	if Health(w.state.Load()) == Failed {
		c.Post(0, notEnqueued{fmt.Errorf("%s: %w", w.name, ErrDeviceFailed)})
		return c
	}
	w.queued++
	w.gauge.Set(float64(w.queued))
	w.reqs <- request{c: c, op: op, gen: w.cancelGen.Load()}
	return c
}

// Await reaps a completion submitted on this worker, yielding the
// token until the operation is done and its virtual time charged.
func (w *Worker) Await(p *sim.Proc, c *sim.Completion) (sim.Duration, error) {
	d, err := p.Await(c)
	var ne notEnqueued
	if !errors.As(err, &ne) {
		w.queued--
		w.gauge.Set(float64(w.queued))
	}
	w.syncMetrics()
	return d, err
}

// Do submits op and awaits it: the calling proc yields the control
// token while the worker performs the operation, so other procs (and
// other devices' workers) run meanwhile. Timed-out and transient
// failures are retried per the engine's RetryPolicy with exponential
// backoff plus deterministic jitter, charged as virtual time. Returns
// the total measured wall-clock duration, which Await has already
// charged to virtual time.
func (w *Worker) Do(p *sim.Proc, op func() error) (sim.Duration, error) {
	total, err := w.Await(p, w.Submit(p, op))
	pol := w.e.policy.Retry
	backoff := pol.Base
	for attempt := 0; attempt < pol.Max && w.retryable(err); attempt++ {
		p.Hold(backoff + w.jitter(backoff))
		w.retries.Add(1)
		w.retryCtr.Inc()
		w.e.flight.RecordV(p.Now(), "retry", w.name,
			fmt.Sprintf("device-layer retry %d after %v", attempt+1, err))
		d, e := w.Await(p, w.Submit(p, op))
		total += d
		err = e
		backoff *= 2
	}
	return total, err
}

// retryable reports whether Do should retry err at the device layer:
// deadline misses and transient faults, but never once the breaker has
// tripped — a Failed device gets no further traffic.
func (w *Worker) retryable(err error) bool {
	if err == nil || Health(w.state.Load()) == Failed {
		return false
	}
	return errors.Is(err, ErrTimeout) || fault.IsTransient(err)
}

// jitter derives a deterministic backoff perturbation in [0, b/2) from
// the worker's seeded source. Token-guarded like the other Do state.
func (w *Worker) jitter(b sim.Duration) sim.Duration {
	if b <= 1 {
		return 0
	}
	return sim.Duration(w.rng.Int63n(int64(b / 2)))
}

// Close stops the worker after draining queued requests and waits for
// it to exit. Safe to call twice and on a nil worker. The caller must
// ensure (by the submit-then-await discipline) that no submission
// races the close.
func (w *Worker) Close() {
	if w == nil || w.closed {
		return
	}
	w.closed = true
	close(w.reqs)
	<-w.done
}

// DeviceWall is one device's total wall-clock busy time.
type DeviceWall struct {
	Device string
	Busy   time.Duration
}

// WallStats summarizes the engine's real-time device activity.
type WallStats struct {
	// PerDevice lists merged busy time per device, sorted by name.
	PerDevice []DeviceWall
	// Busy is the sum over devices of merged busy time.
	Busy time.Duration
	// Union is the wall time during which at least one device was busy.
	Union time.Duration
}

// Overlap is the fraction of device busy time that ran concurrently
// with another device: (Busy − Union) / Busy. Zero when devices took
// strict turns — which is exactly what the pre-async file backend
// measured — approaching 1 as transfers fully overlap.
func (s WallStats) Overlap() float64 {
	if s.Busy <= 0 {
		return 0
	}
	return float64(s.Busy-s.Union) / float64(s.Busy)
}

// WallStats snapshots the engine's wall-clock accounting. Intended for
// after-run reporting; it is safe to call concurrently with workers.
func (e *Engine) WallStats() WallStats {
	e.mu.Lock()
	perDev := make(map[string][]wallInterval, len(e.busy))
	var all []wallInterval
	for dev, ivs := range e.busy {
		perDev[dev] = append([]wallInterval(nil), ivs...)
		all = append(all, ivs...)
	}
	e.mu.Unlock()

	var out WallStats
	names := make([]string, 0, len(perDev))
	for dev := range perDev {
		names = append(names, dev)
	}
	sort.Strings(names)
	for _, dev := range names {
		busy := mergedTotal(perDev[dev])
		out.PerDevice = append(out.PerDevice, DeviceWall{Device: dev, Busy: busy})
		out.Busy += busy
	}
	out.Union = mergedTotal(all)
	return out
}

// PublishMetrics exports the wall-clock stats into reg as gauges, one
// busy-seconds series per device plus the overlap fraction.
func (e *Engine) PublishMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	st := e.WallStats()
	for _, d := range st.PerDevice {
		reg.Gauge("iodev_wall_busy_seconds",
			"Wall-clock time the device's worker spent in OS I/O.",
			obs.A("device", d.Device)).Set(d.Busy.Seconds())
	}
	reg.Gauge("iodev_wall_overlap_fraction",
		"Fraction of wall-clock device busy time overlapped across devices.").Set(st.Overlap())
}

// mergedTotal sorts, coalesces and sums a set of intervals.
func mergedTotal(ivs []wallInterval) time.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool {
		if ivs[i].s != ivs[j].s {
			return ivs[i].s < ivs[j].s
		}
		return ivs[i].t < ivs[j].t
	})
	total := time.Duration(0)
	cur := ivs[0]
	for _, v := range ivs[1:] {
		if v.s <= cur.t {
			if v.t > cur.t {
				cur.t = v.t
			}
			continue
		}
		total += cur.t - cur.s
		cur = v
	}
	return total + (cur.t - cur.s)
}
