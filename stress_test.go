package tapejoin

import (
	"fmt"
	"sync"
	"testing"
)

// stressOutcome is the deterministic part of one stressed join: the
// join result and the fault/recovery counters. Wall-clock timings are
// excluded — on the file backend they legitimately vary run to run.
type stressOutcome struct {
	matches int64
	faults  int64
	retries int64
}

// stressRound runs n concurrent file-backend joins, each with its own
// system (kernel, device workers, scratch dir) and a seeded fault
// schedule chosen by faults(i, method), alternating the two
// concurrent methods. It fails the test on any join or verification
// error and returns the per-slot outcomes.
func stressRound(t *testing.T, n int, faults func(i int, m Method) string) []stressOutcome {
	t.Helper()
	out := make([]stressOutcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			method := CDTGH
			if i%2 == 1 {
				method = CTTGH
			}
			sys, err := NewSystem(Config{
				Backend:    "file",
				BackendDir: t.TempDir(),
				MemoryMB:   1,
				DiskMB:     4,
				Profile:    IdealTape,
				Faults:     faults(i, method),
			})
			if err != nil {
				t.Error(err)
				return
			}
			tR, err := sys.NewTape("R-tape", 32)
			if err != nil {
				t.Error(err)
				return
			}
			tS, err := sys.NewTape("S-tape", 32)
			if err != nil {
				t.Error(err)
				return
			}
			r, err := sys.CreateRelation(tR, RelationConfig{
				Name: "R", SizeMB: 2, KeySpace: 4000, Seed: int64(1 + i),
			})
			if err != nil {
				t.Error(err)
				return
			}
			s, err := sys.CreateRelation(tS, RelationConfig{
				Name: "S", SizeMB: 8, KeySpace: 4000, Seed: int64(100 + i),
			})
			if err != nil {
				t.Error(err)
				return
			}
			res, err := sys.Join(method, r, s)
			if err != nil {
				t.Errorf("join %d (%s): %v", i, method, err)
				return
			}
			if want := ExpectedMatches(r, s); res.Stats.Matches != want {
				t.Errorf("join %d (%s): matches = %d, want %d", i, method, res.Stats.Matches, want)
				return
			}
			out[i] = stressOutcome{
				matches: res.Stats.Matches,
				faults:  res.Stats.Faults,
				retries: res.Stats.Retries,
			}
		}()
	}
	wg.Wait()
	return out
}

// TestFileBackendConcurrentJoinStress drives N fault-injected joins
// through the file backend's async I/O engine at once and repeats the
// round, asserting every join recovers to the exact expected
// cardinality and that the deterministic outcome (matches, faults,
// retries) is identical across rounds. Under -race this is the
// token/completion handoff stress: many kernels, many device workers,
// real OS I/O and recovery retries all in flight together.
func TestFileBackendConcurrentJoinStress(t *testing.T) {
	faults := func(int, Method) string { return "transient=R:5:2,corrupt=S:40:1" }
	const n = 4
	first := stressRound(t, n, faults)
	if t.Failed() {
		t.FailNow()
	}
	second := stressRound(t, n, faults)
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("join %d: outcome changed across rounds: %+v vs %+v", i, first[i], second[i])
		}
	}
	if testing.Verbose() {
		for i, o := range first {
			fmt.Printf("join %d: %d matches, %d faults, %d retries\n", i, o.matches, o.faults, o.retries)
		}
	}
}

// TestFileBackendOSFaultStress is the same concurrency stress with
// OS-level faults in the schedule: syscall EIO on every slot, plus a
// stored bit-flip on the CTT-GH slots (the method whose unit restart
// re-stages corrupted scratch — CDT-GH stages once up front and would
// fail typed instead). Wall-clock-dependent directives (oswait= with
// an op deadline) are deliberately excluded: a loaded CI machine
// could trip a deadline on a clean op and break the cross-round
// determinism this test asserts.
func TestFileBackendOSFaultStress(t *testing.T) {
	faults := func(_ int, m Method) string {
		spec := "oserr=disk:1:2,oserr=R:2"
		if m == CTTGH {
			spec += ",flip=disk:0"
		}
		return spec
	}
	const n = 4
	first := stressRound(t, n, faults)
	if t.Failed() {
		t.FailNow()
	}
	second := stressRound(t, n, faults)
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("join %d: outcome changed across rounds: %+v vs %+v", i, first[i], second[i])
		}
	}
	for i := range first {
		if first[i].faults == 0 {
			t.Errorf("join %d: no faults injected — the OS schedule never bit", i)
		}
	}
}
