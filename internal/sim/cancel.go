package sim

import "errors"

// This file adds cooperative cancellation to the kernel. Cancel may be
// called from any goroutine (like Completion.Post); the Run loop
// integrates the request before its next scheduling decision. From
// that point on:
//
//   - every outstanding external completion is aborted: its Await
//     returns immediately with the cancel cause, and the worker's late
//     Post (it may still be executing the operation) is absorbed
//     silently instead of tripping the double-post panic;
//   - StartIO on a cancelled kernel returns an already-aborted
//     completion, so submit paths fail fast without reaching a device;
//   - every proc can observe the cause via Proc.CancelCause and unwind
//     through its normal error path.
//
// Cancellation is cooperative, not preemptive: procs blocked on
// queues, containers or resources are not yanked out of their wait —
// they wake when their counterpart's unwinding releases them, which
// the join layer's poison/drain discipline guarantees. Virtual-time
// holds cost no wall-clock time, so a cancelled simulation drains as
// fast as its procs can observe the cause.

// ErrCancelled is the default cancellation cause, and the sentinel
// wrapped by causes the kernel synthesizes.
var ErrCancelled = errors.New("sim: cancelled")

// Cancel requests cancellation of the whole simulation with the given
// cause (ErrCancelled when nil). Safe to call from any goroutine, any
// number of times; the first cause wins. Calling Cancel before Run is
// allowed: the kernel integrates it on its first iteration.
func (k *Kernel) Cancel(cause error) {
	if cause == nil {
		cause = ErrCancelled
	}
	k.cancelMu.Lock()
	if k.cancelReq == nil {
		k.cancelReq = cause
	}
	k.cancelMu.Unlock()
	k.cancelPending.Store(true)
	select {
	case k.ioNotify <- struct{}{}:
	default:
	}
}

// CancelCause returns the integrated cancellation cause, or nil while
// the kernel has not (yet) observed a Cancel. Call only with the
// control token held (from a running proc) or from the kernel
// goroutine — the token handoff orders the access.
func (k *Kernel) CancelCause() error { return k.cancelCause }

// CancelCause returns the kernel's cancellation cause, or nil. Must be
// called from p while it holds the control token.
func (p *Proc) CancelCause() error { return p.k.cancelCause }

// integrateCancel runs on the kernel goroutine: it publishes the cause
// and aborts every outstanding external completion so io-blocked procs
// wake with the cause instead of waiting for workers.
func (k *Kernel) integrateCancel() {
	k.cancelPending.Store(false)
	k.cancelMu.Lock()
	cause := k.cancelReq
	k.cancelMu.Unlock()
	if k.cancelCause != nil || cause == nil {
		return
	}
	k.cancelCause = cause
	for c := range k.ioOutstanding {
		c.posted, c.aborted = true, true
		c.err = cause
		k.ioPending--
		if c.waiter != nil {
			k.makeReady(c.waiter)
			c.waiter = nil
		}
		delete(k.ioOutstanding, c)
	}
}
