// Package obsserver is the live-telemetry HTTP endpoint of a running
// join system: /metrics serves the obs registry in Prometheus text
// format, /health the per-device health states of the I/O engine,
// /flight a JSONL snapshot of the flight recorder, and /debug/pprof
// the standard Go profiles. The server is embeddable (Handler) or
// self-hosting (Start/Close), and every source is swappable mid-flight
// with SetSources — the facade points the server at each run's fresh
// registry as batches come and go. All handlers are safe to hit while
// a run is writing: the registry locks per scrape, the flight recorder
// snapshots under its own mutex, and health reads are atomic.
package obsserver

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"repro/internal/obs"
)

// DeviceHealth is one device's health row on /health. It mirrors the
// ioengine state machine without importing it, so any backend can
// report.
type DeviceHealth struct {
	// Device is the engine's device label, e.g. "tape:R" or "disk".
	Device string `json:"device"`
	// State is "healthy", "degraded" or "failed".
	State string `json:"state"`
	// Timeouts and Retries count per-op deadline misses and
	// device-layer retries over the device's lifetime.
	Timeouts int64 `json:"timeouts"`
	Retries  int64 `json:"retries"`
}

// HealthSource yields the current device health rows; called per
// /health request, so it must be cheap and concurrency-safe.
type HealthSource func() []DeviceHealth

// Server is the obs HTTP server. The zero value is not usable; call
// New.
type Server struct {
	mu     sync.Mutex
	reg    *obs.Registry
	flight *obs.FlightRecorder
	health HealthSource

	own     *obs.Registry // server-side metrics, concatenated to /metrics
	scrapes *obs.Counter

	ln  net.Listener
	srv *http.Server
}

// New returns a server with no sources attached yet: /metrics serves
// only the server's own scrape counter, /health reports no devices,
// /flight is empty. Attach sources with SetSources.
func New() *Server {
	own := obs.NewRegistry()
	return &Server{
		own:     own,
		scrapes: own.Counter("obs_scrapes_total", "Number of /metrics scrapes served."),
	}
}

// SetSources points the server at a run's registry, flight recorder
// and health source. Any argument may be nil to detach that source.
// Safe to call while requests are in flight; each handler picks up the
// sources at request time.
func (s *Server) SetSources(reg *obs.Registry, flight *obs.FlightRecorder, health HealthSource) {
	s.mu.Lock()
	s.reg, s.flight, s.health = reg, flight, health
	s.mu.Unlock()
}

func (s *Server) sources() (*obs.Registry, *obs.FlightRecorder, HealthSource) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reg, s.flight, s.health
}

// Handler returns the server's routes, for embedding into an existing
// mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/health", s.handleHealth)
	mux.HandleFunc("/flight", s.handleFlight)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg, _, _ := s.sources()
	s.scrapes.Inc()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// The run's registry first, then the server's own counters, so the
	// response is never empty even before a run attaches.
	fmt.Fprint(w, reg.Exposition())
	fmt.Fprint(w, s.own.Exposition())
}

// healthBody is the /health response document.
type healthBody struct {
	// Status is "ok" when every device is healthy, "degraded" when any
	// is degraded, "failed" when any breaker has tripped.
	Status  string         `json:"status"`
	Devices []DeviceHealth `json:"devices"`
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	_, _, health := s.sources()
	body := healthBody{Status: "ok", Devices: []DeviceHealth{}}
	if health != nil {
		if rows := health(); rows != nil {
			body.Devices = rows
		}
	}
	code := http.StatusOK
	for _, d := range body.Devices {
		switch d.State {
		case "failed":
			body.Status = "failed"
			code = http.StatusServiceUnavailable
		case "degraded":
			if body.Status == "ok" {
				body.Status = "degraded"
			}
		}
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(body)
}

func (s *Server) handleFlight(w http.ResponseWriter, r *http.Request) {
	_, flight, _ := s.sources()
	w.Header().Set("Content-Type", "application/jsonl")
	obs.WriteFlightJSONL(w, flight.Snapshot())
}

// Start binds addr (e.g. "127.0.0.1:9100", or ":0" for an ephemeral
// port) and serves in a background goroutine. It returns the bound
// address.
func (s *Server) Start(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obsserver: listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: s.Handler(), ReadHeaderTimeout: 5 * time.Second}
	s.mu.Lock()
	s.ln, s.srv = ln, srv
	s.mu.Unlock()
	go srv.Serve(ln)
	return ln.Addr().String(), nil
}

// Addr returns the bound address, or "" before Start.
func (s *Server) Addr() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener. Safe on a never-started server.
func (s *Server) Close() error {
	s.mu.Lock()
	srv := s.srv
	s.srv, s.ln = nil, nil
	s.mu.Unlock()
	if srv == nil {
		return nil
	}
	return srv.Close()
}
