// Command tapeload is the deterministic load generator and replay
// client for tapejoind. Given a seed it expands a reproducible query
// workload, drives it through concurrent HTTP clients, verifies that
// every query got exactly one result, and reports wall-clock latency
// percentiles plus the daemon's mount churn and shared-pass counts.
// With -stop-after n every query becomes a streamed LIMIT-n and the
// report adds p50/p99 wall time to each query's first delivered pair.
//
// Two modes:
//
//	tapeload -addr http://127.0.0.1:8080 -queries 200 -clients 50
//	    replay against a running daemon (catalog discovered via
//	    GET /relations)
//
//	tapeload -compare -queries 200 -clients 50
//	    self-host: run the same workload against an in-process daemon
//	    under each policy (fifo, mount-aware, shared-scan) and print
//	    the latency / mount-churn comparison
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	tapejoin "repro"
	"repro/internal/service"
)

func main() {
	var (
		addr        = flag.String("addr", "", "base URL of a running tapejoind (e.g. http://127.0.0.1:8080)")
		compare     = flag.Bool("compare", false, "self-host and compare fifo vs mount-aware vs shared-scan")
		queries     = flag.Int("queries", 100, "total queries")
		clients     = flag.Int("clients", 20, "concurrent clients")
		tenants     = flag.Int("tenants", 4, "tenant labels")
		seed        = flag.Int64("seed", 1, "workload seed")
		streamEvery = flag.Int("stream-every", 10, "stream pairs on every Nth query (0 = never)")
		stopAfter   = flag.Int64("stop-after", 0, "stop every join after n pairs (true LIMIT-n; forces streaming so the report's time-to-first-pair column is observable; 0 = run joins to completion)")
		priorities  = flag.Int("priorities", 1, "priority levels")
		deadlineMS  = flag.Int64("deadline-ms", 0, "per-query service deadline (0 = none)")
		mergeWindow = flag.Duration("merge-window", 10*time.Millisecond, "self-host: shared-scan merge window")
		cacheMB     = flag.Float64("cache", 4, "self-host: staging cache (MB)")
		memMB       = flag.Float64("mem", 8, "self-host: memory M (MB)")
		diskMB      = flag.Float64("disk", 64, "self-host: disk D (MB)")
	)
	flag.Parse()
	spec := service.LoadSpec{
		Seed: *seed, Queries: *queries, Tenants: *tenants,
		StreamEvery: *streamEvery, PriorityLevels: *priorities, DeadlineMS: *deadlineMS,
		StopAfter: *stopAfter,
	}
	var err error
	switch {
	case *addr != "":
		err = replayAgainst(*addr, spec, *clients)
	case *compare:
		err = comparePolicies(spec, *clients, *mergeWindow, *cacheMB, *memMB, *diskMB)
	default:
		err = fmt.Errorf("need -addr or -compare")
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "tapeload:", err)
		os.Exit(1)
	}
}

// replayAgainst drives one replay at a live daemon and prints the
// report plus the daemon's scheduler-counter deltas.
func replayAgainst(base string, spec service.LoadSpec, clients int) error {
	rows, err := service.FetchRelations(base)
	if err != nil {
		return err
	}
	rNames, sNames := service.SplitCatalog(rows)
	if len(rNames) == 0 || len(sNames) == 0 {
		return fmt.Errorf("catalog split failed: R=%v S=%v", rNames, sNames)
	}
	before, err := service.FetchStats(base)
	if err != nil {
		return err
	}
	reqs := service.GenLoad(spec, rNames, sNames)
	rep := service.Replay(base, clients, reqs)
	after, err := service.FetchStats(base)
	if err != nil {
		return err
	}
	fmt.Println(rep.Summary())
	fmt.Printf("daemon: policy=%s mounts+%d shared-passes+%d riders+%d cache-hits+%d\n",
		after.Policy,
		after.Engine.Mounts-before.Engine.Mounts,
		after.Engine.SharedPasses-before.Engine.SharedPasses,
		after.Engine.SharedRiders-before.Engine.SharedRiders,
		after.Engine.CacheHits-before.Engine.CacheHits)
	printFailures(rep)
	if rep.Broken > 0 {
		return fmt.Errorf("%d queries lost, duplicated or errored", rep.Broken)
	}
	return nil
}

// comparePolicies runs the identical workload against a fresh
// in-process daemon per policy and prints the side-by-side table the
// paper's batch experiments make for the online setting: fifo thrashes
// mounts, mount-aware groups them, shared-scan additionally fuses
// same-S queries onto shared passes.
func comparePolicies(spec service.LoadSpec, clients int, mergeWindow time.Duration,
	cacheMB, memMB, diskMB float64) error {

	type row struct {
		policy       string
		rep          *service.Report
		st           *service.StatsBody
		hashMismatch int
	}
	var rows []row
	baseline := map[string]string{} // query ID -> output hash under fifo
	for _, policy := range []tapejoin.BatchPolicy{
		tapejoin.BatchFIFO, tapejoin.BatchMountAware, tapejoin.BatchSharedScan,
	} {
		sys, err := tapejoin.NewSystem(tapejoin.Config{MemoryMB: memMB, DiskMB: diskMB})
		if err != nil {
			return err
		}
		catalog, err := makeCatalog(sys)
		if err != nil {
			return err
		}
		svc, err := sys.StartService(tapejoin.ServiceOptions{
			Policy:      policy,
			CacheMB:     cacheMB,
			MergeWindow: mergeWindow,
			Catalog:     catalog,
		})
		if err != nil {
			return err
		}
		names := make([]string, 0, len(catalog))
		for n := range catalog {
			names = append(names, n)
		}
		sort.Strings(names)
		var rNames, sNames []string
		for _, n := range names {
			if strings.HasPrefix(n, "R") {
				rNames = append(rNames, n)
			} else {
				sNames = append(sNames, n)
			}
		}
		reqs := service.GenLoad(spec, rNames, sNames)
		rep := service.Replay(svc.URL(), clients, reqs)
		st := svc.Stats()
		if err := svc.Drain(); err != nil {
			return err
		}
		sys.Close()

		r := row{policy: string(policy), rep: rep, st: &st}
		// Cross-policy equivalence: the same query ID must produce the
		// same output hash under every policy. Stopped queries are
		// exempt — a LIMIT-n prefix is a valid sub-multiset, but *which*
		// n pairs arrive first depends on the method and schedule.
		for id, o := range rep.Outcomes {
			if o.Err != "" || o.Failed || o.Stopped {
				continue
			}
			if want, ok := baseline[id]; !ok {
				baseline[id] = o.OutputHash
			} else if o.OutputHash != want {
				r.hashMismatch++
			}
		}
		rows = append(rows, r)
		printFailures(rep)
		if rep.Broken > 0 {
			return fmt.Errorf("policy %s: %d queries lost, duplicated or errored", policy, rep.Broken)
		}
	}

	fmt.Printf("%-12s %6s %6s %8s %8s %8s %8s %8s %7s %7s %7s %9s\n",
		"policy", "ok", "fail", "p50", "p99", "fp50", "fp99", "wall", "mounts", "shared", "riders", "hash-miss")
	for _, r := range rows {
		fmt.Printf("%-12s %6d %6d %8v %8v %8v %8v %8v %7d %7d %7d %9d\n",
			r.policy, r.rep.OK, r.rep.Failed,
			r.rep.P50.Round(time.Millisecond), r.rep.P99.Round(time.Millisecond),
			r.rep.FP50.Round(time.Millisecond), r.rep.FP99.Round(time.Millisecond),
			r.rep.Wall.Round(time.Millisecond),
			r.st.Engine.Mounts, r.st.Engine.SharedPasses, r.st.Engine.SharedRiders,
			r.hashMismatch)
		if r.hashMismatch > 0 {
			return fmt.Errorf("policy %s: %d output-hash mismatches vs baseline", r.policy, r.hashMismatch)
		}
	}
	return nil
}

func printFailures(rep *service.Report) {
	shown := 0
	for _, o := range rep.Outcomes {
		if o.Err == "" && !o.Failed {
			continue
		}
		if shown++; shown > 5 {
			fmt.Println("  ...")
			return
		}
		if o.Err != "" {
			fmt.Printf("  broken %s: %s\n", o.ID, o.Err)
		} else {
			fmt.Printf("  failed %s: %s\n", o.ID, o.Reason)
		}
	}
}

// makeCatalog mirrors tapejoind's default dataset so self-hosted
// comparisons exercise the same catalog shape.
func makeCatalog(sys *tapejoin.System) (map[string]*tapejoin.Relation, error) {
	cat := make(map[string]*tapejoin.Relation)
	for i := 0; i < 3; i++ {
		t, err := sys.NewTape(fmt.Sprintf("tape-S%d", i+1), 8)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("S%d", i+1)
		rel, err := sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: name, SizeMB: 6, KeySpace: 2000, Seed: int64(142 + i),
		})
		if err != nil {
			return nil, err
		}
		cat[name] = rel
	}
	for i := 0; i < 4; i++ {
		t, err := sys.NewTape(fmt.Sprintf("tape-R%d", i/2+1), 4)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("R%d", i+1)
		rel, err := sys.CreateRelation(t, tapejoin.RelationConfig{
			Name: name, SizeMB: 1, KeySpace: 2000, Seed: int64(42 + i),
		})
		if err != nil {
			return nil, err
		}
		cat[name] = rel
	}
	return cat, nil
}
