package fault

import (
	"fmt"
	"time"
)

// This file is the OS-level half of the fault taxonomy: rules that fire
// at the syscall layer of the file backend rather than inside the
// device model. The same Schedule holds both kinds; Decide serves the
// device model and DecideOS serves the file layer, so a single -faults
// string drives both backends.
//
// OS decisions are made at *plan* time, while the deciding process
// holds the simulation control token — the file layer then applies the
// armed decision on its worker goroutine. That keeps Schedule state
// single-threaded even though the faulted syscalls run off-token.

// OSDecision is an injector's verdict on one OS-level file operation.
// The zero value means "proceed normally".
type OSDecision struct {
	// Err, if non-nil, fails the operation with an EIO-style error
	// (wrapping ErrTransient, so device-layer retries apply).
	Err error
	// Torn asks the file layer to write only a prefix of one record and
	// then report success — a torn write that only checksum
	// verification can catch later.
	Torn bool
	// Flip asks the file layer to flip one bit in the buffer as it
	// crosses the syscall boundary: stored corruption on writes.
	Flip bool
	// Stall delays the operation by a *wall-clock* duration on the
	// device worker, exercising I/O deadlines and health tracking.
	Stall time.Duration
}

// Zero reports whether the decision asks for nothing.
func (d OSDecision) Zero() bool {
	return d.Err == nil && !d.Torn && !d.Flip && d.Stall == 0
}

// OSInjector is implemented by injectors that also decide OS-level
// operations. *Schedule implements it.
type OSInjector interface {
	DecideOS(op Op) OSDecision
}

// DecideOS consults inj's OS-level side, tolerating injectors (or nil)
// that do not have one.
func DecideOS(inj Injector, op Op) OSDecision {
	if osi, ok := inj.(OSInjector); ok {
		return osi.DecideOS(op)
	}
	return OSDecision{}
}

// matchesOS reports whether an OS-level rule applies to op.
func (r *rule) matchesOS(op Op) bool {
	if r.count == 0 || !r.osLevel() {
		return false
	}
	if r.device != "" && r.device != op.Device {
		return false
	}
	if op.Now < r.at {
		return false
	}
	switch r.kind {
	case kindWallStall:
		// Stalls hit any operation on the device, read or write.
		return true
	case kindTornWrite, kindFlipStored:
		if !op.Write {
			return false
		}
	}
	if r.n > 0 && (r.addr >= op.Addr+op.N || r.addr+r.n <= op.Addr) {
		return false
	}
	return true
}

// DecideOS implements OSInjector: the first matching active OS-level
// rule decides the operation, spending one of its remaining firings.
func (s *Schedule) DecideOS(op Op) OSDecision {
	if s == nil {
		return OSDecision{}
	}
	for _, r := range s.rules {
		if !r.matchesOS(op) {
			continue
		}
		if r.count > 0 {
			r.count--
		}
		switch r.kind {
		case kindOSErr:
			return OSDecision{Err: fmt.Errorf("%w: %s", ErrTransient, r.err)}
		case kindTornWrite:
			return OSDecision{Torn: true}
		case kindWallStall:
			return OSDecision{Stall: r.wall}
		case kindFlipStored:
			return OSDecision{Flip: true}
		}
	}
	return OSDecision{}
}

// AddOSError makes the next count file operations covering
// [addr, addr+1) on device fail with an EIO-style retryable error at
// the syscall layer.
func (s *Schedule) AddOSError(device string, addr int64, count int) *Schedule {
	if count <= 0 {
		count = 1
	}
	s.rules = append(s.rules, &rule{
		kind: kindOSErr, device: device, addr: addr, n: 1, count: count,
		err: fmt.Errorf("injected OS I/O error at block %d", addr),
	})
	return s
}

// AddTornWrite makes the next count file writes covering [addr, addr+1)
// on device land torn: only a prefix of one record reaches the file,
// yet the write reports success.
func (s *Schedule) AddTornWrite(device string, addr int64, count int) *Schedule {
	if count <= 0 {
		count = 1
	}
	s.rules = append(s.rules, &rule{
		kind: kindTornWrite, device: device, addr: addr, n: 1, count: count,
	})
	return s
}

// AddWallStall makes the next count file operations on device (any
// address) sleep for the wall-clock duration d before proceeding —
// the knob that exercises per-op deadlines and device health.
func (s *Schedule) AddWallStall(device string, d time.Duration, count int) *Schedule {
	if count <= 0 {
		count = 1
	}
	s.rules = append(s.rules, &rule{
		kind: kindWallStall, device: device, count: count, wall: d,
	})
	return s
}

// AddFlipStored makes the next count file writes covering
// [addr, addr+1) on device store one flipped bit — silent on-media
// corruption that only checksum verification catches.
func (s *Schedule) AddFlipStored(device string, addr int64, count int) *Schedule {
	if count <= 0 {
		count = 1
	}
	s.rules = append(s.rules, &rule{
		kind: kindFlipStored, device: device, addr: addr, n: 1, count: count,
	})
	return s
}
